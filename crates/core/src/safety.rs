//! The **safety-oracle layer**: one narrow trait every upper layer
//! programs against, plus a memoizing implementation that answers each
//! distinct safety question **once per module instance** no matter which
//! optimizer asks.
//!
//! The paper's stack asks the same question everywhere: *"what privacy
//! level does visible set `V` give module `m`?"* — standalone checking
//! (Definition 2 via Lemma 4), the requirement-list derivations (§4.2),
//! the Secure-View optimizers, and the Theorem-1/3 experiments. The key
//! structural fact is that the full **privacy level**
//! `min_x |OUT_x| = min-group-distinct × ∏ hidden-output domains`
//! determines `is_safe(V, Γ)` for *every* `Γ` at once, so a per-`V`
//! level cache subsumes all Γ-specific probes.
//!
//! Layering:
//!
//! * [`SafetyOracle`] — the trait: `privacy_level` / `is_safe` /
//!   `is_safe_hidden`, with a bitmask-word probe
//!   ([`SafetyOracle::is_safe_hidden_word`]) used by the dense subset
//!   enumerations;
//! * [`KernelOracle`] — uninstrumented pass-through to the interned
//!   columnar kernel (no memo; what the one-shot
//!   [`StandaloneModule`] methods use);
//! * [`MemoSafetyOracle`] — the memoizing oracle: a word-keyed
//!   `V → level` cache makes repeated queries O(1) lookups with zero
//!   allocation;
//! * [`NaiveOracle`] — the row-at-a-time seed semantics
//!   (`ops::reference`), kept as the property-test specification and
//!   benchmark baseline;
//! * [`WorkflowOracles`] — one memoized oracle per private module of a
//!   workflow, materialized once and shared by every requirement-list /
//!   instance derivation (`sv-optimize`) and the bench harness.
//!
//! The instrumented black-box interface of the Theorem-3 experiments
//! ([`crate::oracle::SafeViewOracle`]) sits *on top* of this layer:
//! [`crate::oracle::HonestOracle`] is a Γ-fixing adapter around a
//! [`MemoSafetyOracle`].
//!
//! ### Serial reference vs. parallel sweep
//!
//! The lattice enumerations in this module —
//! [`min_cost_safe_hidden`] and [`minimal_safe_hidden_sets`] — walk the
//! `2^k` hidden-set masks **serially** through a `&mut dyn
//! SafetyOracle`. They are deliberately kept simple: they are the
//! executable specification the property suites compare the parallel
//! work-stealing sweep ([`crate::sweep`]) against, and the path of
//! choice when the caller already owns a warm [`MemoSafetyOracle`]
//! (repeat derivations over the same module, e.g. a Γ sweep). New
//! callers that sweep a cold lattice — especially for large `k` —
//! should go through [`crate::sweep`] instead.
//!
//! ### The antichain pruning invariant (Proposition 1)
//!
//! Safety is **monotone** in the hidden set: if hiding `V̄` is
//! Γ-standalone-safe, so is hiding any `V̄' ⊇ V̄` (hiding more never
//! reveals more). Consequently the ⊆-minimal safe hidden sets form an
//! **antichain** that generates *all* safe hidden sets by superset
//! closure, and any lattice search may skip the entire up-set of a
//! known-safe set without probing it. [`minimal_safe_hidden_sets`]
//! exploits this by enumerating masks in ascending-popcount order and
//! skipping supersets of already-found minimal sets; the parallel sweep
//! strengthens it with a layer cutoff (once a whole popcount layer is
//! covered by the antichain, every higher layer is covered too and the
//! remaining up-sets are skipped wholesale — see
//! [`crate::sweep::minimal_sets_sweep`]).

use crate::error::CoreError;
use crate::standalone::{StandaloneModule, MAX_DENSE_ATTRS};
use std::collections::HashMap;
use sv_relation::AttrSet;
use sv_workflow::{ModuleId, Workflow};

/// Bitmask of the low `k` bits (`k ≤ 64`).
fn low_mask(k: usize) -> u64 {
    if k >= 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

/// The standalone-privacy question, asked through one interface by
/// every layer above the kernel.
///
/// Implementations are instrumented (`calls`) so experiments can chart
/// query counts, and may memoize — hence `&mut self` on the probes.
pub trait SafetyOracle {
    /// The module the oracle answers for.
    fn module(&self) -> &StandaloneModule;

    /// Number of attributes `k = |I| + |O|`.
    fn k(&self) -> usize {
        self.module().k()
    }

    /// The privacy level of `visible`: `min_x |OUT_x|`
    /// (`u128::MAX` on an empty relation). Determines
    /// [`is_safe`](Self::is_safe) for every Γ.
    fn privacy_level(&mut self, visible: &AttrSet) -> u128;

    /// Γ-standalone-privacy (Definition 2 / Lemma 4).
    fn is_safe(&mut self, visible: &AttrSet, gamma: u128) -> bool {
        gamma <= 1 || self.privacy_level(visible) >= gamma
    }

    /// Safety phrased on the hidden set `V̄` (`V = A \ V̄`).
    fn is_safe_hidden(&mut self, hidden: &AttrSet, gamma: u128) -> bool {
        if gamma <= 1 {
            return true;
        }
        if self.k() <= 64 {
            if let Some(hw) = hidden.as_word() {
                return self.is_safe_hidden_word(hw, gamma);
            }
        }
        let visible = hidden.complement(self.k());
        self.is_safe(&visible, gamma)
    }

    /// Word-encoded [`is_safe_hidden`](Self::is_safe_hidden) — the form
    /// the dense subset enumerations use. The word can only name
    /// attributes `0..64`; for wider modules the probe falls back to
    /// the set-based path (complementing over all `k` attributes), so
    /// the answer stays correct.
    fn is_safe_hidden_word(&mut self, hidden_word: u64, gamma: u128) -> bool {
        if self.k() > 64 {
            let visible = AttrSet::from_word(hidden_word).complement(self.k());
            return self.is_safe(&visible, gamma);
        }
        let visible = AttrSet::from_word(!hidden_word & low_mask(self.k()));
        self.is_safe(&visible, gamma)
    }

    /// Number of probes answered so far.
    fn calls(&self) -> u64;
}

/// Uninstrumented pass-through oracle over the interned kernel —
/// correct and fast, but re-evaluates every probe.
pub struct KernelOracle<'a> {
    module: &'a StandaloneModule,
    calls: u64,
}

impl<'a> KernelOracle<'a> {
    /// Borrows `module`.
    #[must_use]
    pub fn new(module: &'a StandaloneModule) -> Self {
        Self { module, calls: 0 }
    }
}

impl SafetyOracle for KernelOracle<'_> {
    fn module(&self) -> &StandaloneModule {
        self.module
    }

    fn privacy_level(&mut self, visible: &AttrSet) -> u128 {
        self.calls += 1;
        self.module.privacy_level(visible)
    }

    fn is_safe(&mut self, visible: &AttrSet, gamma: u128) -> bool {
        self.calls += 1;
        self.module.is_safe(visible, gamma)
    }

    fn is_safe_hidden_word(&mut self, hidden_word: u64, gamma: u128) -> bool {
        self.calls += 1;
        let k = self.module.k();
        if let Some(safe) = self.module.is_safe_word(!hidden_word & low_mask(k), gamma) {
            return safe;
        }
        self.module
            .is_safe_hidden(&AttrSet::from_word(hidden_word & low_mask(k)), gamma)
    }

    fn calls(&self) -> u64 {
        self.calls
    }
}

/// The row-at-a-time seed semantics as an oracle — the executable
/// specification ([`sv_relation::ops::reference`]) and the benchmark
/// baseline the interned kernel is measured against.
pub struct NaiveOracle {
    module: StandaloneModule,
    calls: u64,
}

impl NaiveOracle {
    /// Wraps `module`.
    #[must_use]
    pub fn new(module: StandaloneModule) -> Self {
        Self { module, calls: 0 }
    }
}

impl SafetyOracle for NaiveOracle {
    fn module(&self) -> &StandaloneModule {
        &self.module
    }

    fn privacy_level(&mut self, visible: &AttrSet) -> u128 {
        self.calls += 1;
        self.module.privacy_level_naive(visible)
    }

    fn calls(&self) -> u64 {
        self.calls
    }
}

/// The memoizing oracle: per visible set, the full privacy level is
/// computed once on the interned kernel and cached (word-keyed for
/// `k ≤ 64`, [`AttrSet`]-keyed beyond). Repeated `is_safe` queries —
/// for any Γ — are O(1) hash lookups with no allocation.
pub struct MemoSafetyOracle {
    module: StandaloneModule,
    word_levels: HashMap<u64, u128>,
    wide_levels: HashMap<AttrSet, u128>,
    /// Per-oracle probe scratch: cache-miss kernel probes run through
    /// this buffer instead of the kernel's shared scratch mutex, so one
    /// oracle per sweep shard means zero cross-thread probe contention.
    scratch: Vec<u64>,
    calls: u64,
    misses: u64,
}

impl MemoSafetyOracle {
    /// Wraps `module` with an empty cache.
    #[must_use]
    pub fn new(module: StandaloneModule) -> Self {
        Self {
            module,
            word_levels: HashMap::new(),
            wide_levels: HashMap::new(),
            scratch: Vec::new(),
            calls: 0,
            misses: 0,
        }
    }

    /// Probes that missed the cache (kernel evaluations).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of cached distinct visible sets.
    #[must_use]
    pub fn cached_levels(&self) -> usize {
        self.word_levels.len() + self.wide_levels.len()
    }

    /// Consumes the oracle, returning the module.
    #[must_use]
    pub fn into_module(self) -> StandaloneModule {
        self.module
    }

    /// Memoized level for a masked visible word (`k ≤ 64` path).
    fn level_word(&mut self, visible_word: u64) -> u128 {
        if let Some(&l) = self.word_levels.get(&visible_word) {
            return l;
        }
        self.misses += 1;
        let level = self
            .module
            .privacy_level_word_with(visible_word, &mut self.scratch)
            .unwrap_or_else(|| self.module.privacy_level(&AttrSet::from_word(visible_word)));
        self.word_levels.insert(visible_word, level);
        level
    }

    /// Memoized level through the wide ([`AttrSet`]-keyed) cache.
    fn level_wide(&mut self, visible: &AttrSet) -> u128 {
        // Canonicalize so sets differing only outside the schema share
        // a cache line.
        let canonical = visible.intersection(&self.module.schema().all_attrs());
        if let Some(&l) = self.wide_levels.get(&canonical) {
            return l;
        }
        self.misses += 1;
        let level = self.module.privacy_level(&canonical);
        self.wide_levels.insert(canonical, level);
        level
    }
}

impl SafetyOracle for MemoSafetyOracle {
    fn module(&self) -> &StandaloneModule {
        &self.module
    }

    fn privacy_level(&mut self, visible: &AttrSet) -> u128 {
        self.calls += 1;
        if self.module.k() <= 64 {
            if let Some(vw) = visible.as_word() {
                return self.level_word(vw & low_mask(self.module.k()));
            }
        }
        self.level_wide(visible)
    }

    fn is_safe_hidden_word(&mut self, hidden_word: u64, gamma: u128) -> bool {
        self.calls += 1;
        if gamma <= 1 {
            return true;
        }
        let k = self.module.k();
        if k > 64 {
            // The word cannot name attrs ≥ 64: complement over all k
            // attributes and take the wide path.
            let visible = AttrSet::from_word(hidden_word).complement(k);
            return self.level_wide(&visible) >= gamma;
        }
        self.level_word(!hidden_word & low_mask(k)) >= gamma
    }

    fn calls(&self) -> u64 {
        self.calls
    }
}

/// Standalone **Secure-View** through an oracle: minimum-cost hidden
/// subset `V̄` such that the module is Γ-private w.r.t. `V = A \ V̄`,
/// by budget-pruned dense subset enumeration.
///
/// # Errors
/// [`CoreError::TooManyAttributes`] if `k > MAX_DENSE_ATTRS`.
///
/// # Panics
/// Panics unless `costs.len() == k`.
pub fn min_cost_safe_hidden(
    oracle: &mut dyn SafetyOracle,
    costs: &[u64],
    gamma: u128,
) -> Result<Option<(AttrSet, u64)>, CoreError> {
    let k = oracle.k();
    if k > MAX_DENSE_ATTRS {
        return Err(CoreError::TooManyAttributes {
            k,
            max: MAX_DENSE_ATTRS,
        });
    }
    assert_eq!(costs.len(), k, "one cost per attribute");
    let mut best: Option<(u64, u64)> = None; // (mask, cost)
    for mask in 0u64..(1u64 << k) {
        let cost: u64 = (0..k)
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| costs[i])
            .sum();
        if let Some((_, b)) = best {
            if cost >= b {
                continue;
            }
        }
        if oracle.is_safe_hidden_word(mask, gamma) {
            best = Some((mask, cost));
        }
    }
    Ok(best.map(|(mask, cost)| (AttrSet::from_word(mask), cost)))
}

/// All ⊆-minimal safe hidden subsets through an oracle — the module's
/// set-constraints requirement list `L_i` (§4.2). Safety is monotone in
/// the hidden set (Proposition 1), so these form an antichain
/// generating all safe hidden sets by superset closure.
///
/// # Errors
/// [`CoreError::TooManyAttributes`] if `k > MAX_DENSE_ATTRS`.
pub fn minimal_safe_hidden_sets(
    oracle: &mut dyn SafetyOracle,
    gamma: u128,
) -> Result<Vec<AttrSet>, CoreError> {
    let k = oracle.k();
    if k > MAX_DENSE_ATTRS {
        return Err(CoreError::TooManyAttributes {
            k,
            max: MAX_DENSE_ATTRS,
        });
    }
    // Enumerate by increasing popcount: a safe set is minimal iff no
    // previously found (smaller) safe set is a subset of it.
    let mut masks: Vec<u64> = (0..(1u64 << k)).collect();
    masks.sort_by_key(|m| m.count_ones());
    let mut minimal: Vec<u64> = Vec::new();
    for mask in masks {
        #[allow(clippy::manual_contains)] // subset test, not equality
        if minimal.iter().any(|&m| m & mask == m) {
            continue; // superset of a known minimal safe set
        }
        if oracle.is_safe_hidden_word(mask, gamma) {
            minimal.push(mask);
        }
    }
    Ok(minimal.into_iter().map(AttrSet::from_word).collect())
}

/// One memoized safety oracle per **private** module of a workflow,
/// materialized once and shared across every consumer — requirement
/// lists, instance derivations, optimizers, benches. This is what makes
/// "identical safety queries are answered once per instance, regardless
/// of which optimizer asks" true end-to-end.
pub struct WorkflowOracles {
    entries: Vec<(ModuleId, MemoSafetyOracle)>,
}

impl WorkflowOracles {
    /// Materializes each private module's relation (budget-capped) and
    /// wraps it in a [`MemoSafetyOracle`].
    ///
    /// # Errors
    /// Propagates module-materialization failures
    /// ([`CoreError::Workflow`] budget errors).
    pub fn for_workflow(workflow: &Workflow, budget: u128) -> Result<Self, CoreError> {
        let mut entries = Vec::new();
        for id in workflow.private_modules() {
            let sm = StandaloneModule::from_workflow_module(workflow, id, budget)?;
            entries.push((id, MemoSafetyOracle::new(sm)));
        }
        Ok(Self { entries })
    }

    /// The covered module ids, in `private_modules()` order.
    #[must_use]
    pub fn module_ids(&self) -> Vec<ModuleId> {
        self.entries.iter().map(|(id, _)| *id).collect()
    }

    /// Mutable access to one module's oracle.
    #[must_use]
    pub fn oracle_mut(&mut self, id: ModuleId) -> Option<&mut MemoSafetyOracle> {
        self.entries
            .iter_mut()
            .find(|(mid, _)| *mid == id)
            .map(|(_, o)| o)
    }

    /// Iterates `(id, oracle)` mutably, in `private_modules()` order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (ModuleId, &mut MemoSafetyOracle)> {
        self.entries.iter_mut().map(|(id, o)| (*id, o))
    }

    /// Total probes across all oracles.
    #[must_use]
    pub fn total_calls(&self) -> u64 {
        self.entries.iter().map(|(_, o)| o.calls()).sum()
    }

    /// Total cache misses (kernel evaluations) across all oracles.
    #[must_use]
    pub fn total_misses(&self) -> u64 {
        self.entries.iter().map(|(_, o)| o.misses()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_workflow::library::fig1_workflow;

    fn m1() -> StandaloneModule {
        StandaloneModule::from_workflow_module(&fig1_workflow(), ModuleId(0), 1 << 20).unwrap()
    }

    #[test]
    fn memo_agrees_with_kernel_and_naive_on_all_subsets() {
        let m = m1();
        let mut memo = MemoSafetyOracle::new(m.clone());
        let mut naive = NaiveOracle::new(m.clone());
        let mut kernel = KernelOracle::new(&m);
        for mask in 0u32..(1 << 5) {
            let visible = AttrSet::from_word(u64::from(mask));
            let a = memo.privacy_level(&visible);
            let b = naive.privacy_level(&visible);
            let c = kernel.privacy_level(&visible);
            assert_eq!(a, b, "mask={mask:#b}");
            assert_eq!(a, c, "mask={mask:#b}");
            for gamma in 1..=9u128 {
                assert_eq!(memo.is_safe(&visible, gamma), a >= gamma || gamma <= 1);
            }
        }
    }

    #[test]
    fn memo_answers_repeats_without_reevaluating() {
        let mut memo = MemoSafetyOracle::new(m1());
        let v = AttrSet::from_indices(&[0, 2, 4]);
        let first = memo.privacy_level(&v);
        let misses_after_first = memo.misses();
        for gamma in 1..=8u128 {
            let _ = memo.is_safe(&v, gamma);
        }
        let _ = memo.privacy_level(&v);
        assert_eq!(memo.privacy_level(&v), first);
        assert_eq!(memo.misses(), misses_after_first, "no further kernel work");
        assert!(memo.calls() > misses_after_first);
        assert_eq!(memo.cached_levels(), 1);
    }

    #[test]
    fn hidden_word_probes_share_the_cache_with_visible_probes() {
        let mut memo = MemoSafetyOracle::new(m1());
        // V = {0,2,4} ⇔ hidden {1,3}.
        let v = AttrSet::from_indices(&[0, 2, 4]);
        let level = memo.privacy_level(&v);
        let m0 = memo.misses();
        assert_eq!(memo.is_safe_hidden_word(0b01010, 4), level >= 4);
        assert_eq!(memo.misses(), m0, "word probe hits the same cache line");
    }

    #[test]
    fn oracle_enumerations_match_module_methods() {
        let m = m1();
        let mut memo = MemoSafetyOracle::new(m.clone());
        let (h1, c1) = min_cost_safe_hidden(&mut memo, &[10, 3, 9, 2, 9], 4)
            .unwrap()
            .unwrap();
        let (h2, c2) = m
            .min_cost_safe_hidden(&[10, 3, 9, 2, 9], 4)
            .unwrap()
            .unwrap();
        assert_eq!((h1, c1), (h2, c2));
        let a = minimal_safe_hidden_sets(&mut memo, 4).unwrap();
        let b = m.minimal_safe_hidden_sets(4).unwrap();
        assert_eq!(a, b);
        // The second enumeration re-used the first's cache: the lattice
        // has 32 subsets, so misses are bounded by 32.
        assert!(memo.misses() <= 32, "misses = {}", memo.misses());
        assert!(memo.calls() > memo.misses());
    }

    #[test]
    fn workflow_oracles_cover_private_modules() {
        let w = fig1_workflow();
        let mut oracles = WorkflowOracles::for_workflow(&w, 1 << 20).unwrap();
        assert_eq!(oracles.module_ids().len(), 3);
        let o = oracles.oracle_mut(ModuleId(0)).unwrap();
        assert!(o.is_safe(&AttrSet::from_indices(&[0, 2, 4]), 4));
        assert!(oracles.total_calls() >= 1);
        assert!(oracles.oracle_mut(ModuleId(9)).is_none());
        assert!(oracles.total_misses() <= oracles.total_calls());
    }
}
