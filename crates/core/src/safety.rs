//! The **safety-oracle layer**: one narrow trait every upper layer
//! programs against, plus a memoizing implementation that answers each
//! distinct safety question **once per module instance** no matter which
//! optimizer asks.
//!
//! The paper's stack asks the same question everywhere: *"what privacy
//! level does visible set `V` give module `m`?"* — standalone checking
//! (Definition 2 via Lemma 4), the requirement-list derivations (§4.2),
//! the Secure-View optimizers, and the Theorem-1/3 experiments. The key
//! structural fact is that the full **privacy level**
//! `min_x |OUT_x| = min-group-distinct × ∏ hidden-output domains`
//! determines `is_safe(V, Γ)` for *every* `Γ` at once, so a per-`V`
//! level cache subsumes all Γ-specific probes.
//!
//! Layering:
//!
//! * [`SafetyOracle`] — the trait: `privacy_level` / `is_safe` /
//!   `is_safe_hidden`, with a bitmask-word probe
//!   ([`SafetyOracle::is_safe_hidden_word`]) used by the dense subset
//!   enumerations;
//! * [`KernelOracle`] — uninstrumented pass-through to the interned
//!   columnar kernel (no memo; what the one-shot
//!   [`StandaloneModule`] methods use);
//! * [`MemoSafetyOracle`] — the memoizing oracle: a word-keyed
//!   `V → level` cache makes repeated queries O(1) lookups with zero
//!   allocation;
//! * [`NaiveOracle`] — the row-at-a-time seed semantics
//!   (`ops::reference`), kept as the property-test specification and
//!   benchmark baseline;
//! * [`WorkflowOracles`] — one memoized oracle per private module of a
//!   workflow, materialized once and shared by every requirement-list /
//!   instance derivation (`sv-optimize`) and the bench harness.
//!
//! ### The batched serving path
//!
//! At serving scale (the ROADMAP's "heavy traffic" north star), probes
//! arrive as **streams**, not single calls. [`SafetyOracle::is_safe_batch`]
//! answers a slice of `(visible word, Γ)` questions at once — the
//! default implementation is the sequential loop (the executable
//! specification), and [`MemoSafetyOracle`] overrides it to
//! cache-partition the batch and answer all distinct misses in one
//! kernel batch pass. [`WorkflowOracles::probe_batch`] lifts this to
//! **mixed-module batches** of [`ProbeRequest`]s, routing each module's
//! sub-batch to its oracle with atomic up-front validation (unknown
//! module or stale [`ProbeRequest::epoch`] ⇒ the whole batch fails
//! before any memo state is touched).
//!
//! ### Concurrent reads, sharded writes
//!
//! Every probe in this module takes **`&self`**: [`MemoSafetyOracle`]
//! keeps its level cache in `MEMO_SHARDS` (16) read-mostly lock shards
//! (epoch-stamped entries, monotone shortcut preserved), so warm
//! probes from any number of serving threads — and the sweep workers
//! sharing one oracle per lattice — proceed in parallel on shard
//! read-locks. [`WorkflowOracles::probe_batch`] is likewise `&self`.
//! Writes are **sharded per module**: [`WorkflowOracles`] holds each
//! module's oracle behind its own `RwLock`, so the batch-ingest path
//! ([`WorkflowOracles::validate_batch`] →
//! [`WorkflowOracles::apply_batch`]) validates a whole
//! [`IngestBatch`] up front under read locks, then applies per-module
//! mutations concurrently — a probe only waits for the one module
//! currently being appended, never for the whole workflow. New epochs
//! are published through a seqlock-style epoch pair
//! ([`WorkflowOracles::epoch_snapshot`]), so epoch reads never block
//! on an in-flight append, and epoch-conditioned requests
//! ([`ProbeRequest::epoch`]) let clients detect an append that slipped
//! between deriving a question and asking it
//! ([`CoreError::StaleEpoch`]). The legacy `&mut self` appends
//! ([`WorkflowOracles::ingest_execution`] /
//! [`WorkflowOracles::append_execution`]) remain for exclusive owners.
//!
//! The instrumented black-box interface of the Theorem-3 experiments
//! ([`crate::oracle::SafeViewOracle`]) sits *on top* of this layer:
//! [`crate::oracle::HonestOracle`] is a Γ-fixing adapter around a
//! [`MemoSafetyOracle`].
//!
//! ### Serial reference vs. parallel sweep
//!
//! The lattice enumerations in this module —
//! [`min_cost_safe_hidden`] and [`minimal_safe_hidden_sets`] — walk the
//! `2^k` hidden-set masks **serially** through a `&dyn
//! SafetyOracle`. They are deliberately kept simple: they are the
//! executable specification the property suites compare the parallel
//! work-stealing sweep ([`crate::sweep`]) against, and the path of
//! choice when the caller already owns a warm [`MemoSafetyOracle`]
//! (repeat derivations over the same module, e.g. a Γ sweep). New
//! callers that sweep a cold lattice — especially for large `k` —
//! should go through [`crate::sweep`] instead.
//!
//! ### The antichain pruning invariant (Proposition 1)
//!
//! Safety is **monotone** in the hidden set: if hiding `V̄` is
//! Γ-standalone-safe, so is hiding any `V̄' ⊇ V̄` (hiding more never
//! reveals more). Consequently the ⊆-minimal safe hidden sets form an
//! **antichain** that generates *all* safe hidden sets by superset
//! closure, and any lattice search may skip the entire up-set of a
//! known-safe set without probing it. [`minimal_safe_hidden_sets`]
//! exploits this by enumerating masks in ascending-popcount order and
//! skipping supersets of already-found minimal sets; the parallel sweep
//! strengthens it with a layer cutoff (once a whole popcount layer is
//! covered by the antichain, every higher layer is covered too and the
//! remaining up-sets are skipped wholesale — see
//! [`crate::sweep::minimal_sets_sweep`]).

use crate::error::CoreError;
use crate::standalone::{StandaloneModule, MAX_DENSE_ATTRS};
use std::collections::HashMap;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{RwLock, RwLockReadGuard};
use sv_relation::{AttrSet, ScratchPool};
use sv_workflow::{ModuleId, Workflow};

/// Number of lock shards in the memoized oracle's level caches.
/// Warm probes take only one shard **read**-lock, so serving threads
/// hitting different visible sets (different shards) share nothing but
/// a read-mostly lock each; 16 shards comfortably cover the 1–8 serving
/// threads the ROADMAP targets and the sweep worker cap.
const MEMO_SHARDS: usize = 16;

/// The word-cache shard a visible word hashes to (Fibonacci hashing —
/// visible words are dense low-bit masks, so multiply-shift spreads
/// them far better than a modulo on the raw word).
fn word_shard(word: u64) -> usize {
    (word.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % MEMO_SHARDS
}

/// The wide-cache shard a canonical visible set hashes to (the same
/// [`sv_relation::hash_shard`] scheme the kernel's group caches use).
fn wide_shard(set: &AttrSet) -> usize {
    sv_relation::hash_shard(set, MEMO_SHARDS)
}

/// Bitmask of the low `k` bits (`k ≤ 64`).
fn low_mask(k: usize) -> u64 {
    if k >= 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

/// The standalone-privacy question, asked through one interface by
/// every layer above the kernel.
///
/// Every probe takes **`&self`**: implementations memoize behind
/// interior shared state (sharded read-mostly maps, atomic counters),
/// so one oracle instance can serve any number of concurrent reader
/// threads — the serving tier shares a single warm instance across
/// threads instead of cloning cold ones. The only mutating operations
/// are the streaming appends (`&mut self` on the concrete types), which
/// Rust's aliasing rules exclude from overlapping any probe.
/// Implementations are instrumented (`calls`) so experiments can chart
/// query counts.
///
/// # Examples
/// ```
/// use sv_core::safety::{KernelOracle, SafetyOracle};
/// use sv_core::StandaloneModule;
/// use sv_relation::AttrSet;
/// use sv_workflow::{library::fig1_workflow, ModuleId};
///
/// let m = StandaloneModule::from_workflow_module(&fig1_workflow(), ModuleId(0), 1 << 20)
///     .unwrap();
/// let oracle = KernelOracle::new(&m);
/// // Example 3 of the paper: V = {a1, a3, a5} is safe for Γ = 4 —
/// // and the full privacy level answers every Γ at once.
/// let v = AttrSet::from_indices(&[0, 2, 4]);
/// assert!(oracle.is_safe(&v, 4));
/// assert_eq!(oracle.privacy_level(&v), 4);
/// assert_eq!(oracle.calls(), 2);
/// ```
pub trait SafetyOracle {
    /// The module the oracle answers for.
    fn module(&self) -> &StandaloneModule;

    /// Number of attributes `k = |I| + |O|`.
    fn k(&self) -> usize {
        self.module().k()
    }

    /// The privacy level of `visible`: `min_x |OUT_x|`
    /// (`u128::MAX` on an empty relation). Determines
    /// [`is_safe`](Self::is_safe) for every Γ.
    fn privacy_level(&self, visible: &AttrSet) -> u128;

    /// Γ-standalone-privacy (Definition 2 / Lemma 4).
    fn is_safe(&self, visible: &AttrSet, gamma: u128) -> bool {
        gamma <= 1 || self.privacy_level(visible) >= gamma
    }

    /// Safety phrased on the hidden set `V̄` (`V = A \ V̄`).
    fn is_safe_hidden(&self, hidden: &AttrSet, gamma: u128) -> bool {
        if gamma <= 1 {
            return true;
        }
        if self.k() <= 64 {
            if let Some(hw) = hidden.as_word() {
                return self.is_safe_hidden_word(hw, gamma);
            }
        }
        let visible = hidden.complement(self.k());
        self.is_safe(&visible, gamma)
    }

    /// Word-encoded [`is_safe_hidden`](Self::is_safe_hidden) — the form
    /// the dense subset enumerations use. The word can only name
    /// attributes `0..64`; for wider modules the probe falls back to
    /// the set-based path (complementing over all `k` attributes), so
    /// the answer stays correct.
    fn is_safe_hidden_word(&self, hidden_word: u64, gamma: u128) -> bool {
        if self.k() > 64 {
            let visible = AttrSet::from_word(hidden_word).complement(self.k());
            return self.is_safe(&visible, gamma);
        }
        let visible = AttrSet::from_word(!hidden_word & low_mask(self.k()));
        self.is_safe(&visible, gamma)
    }

    /// **Batched probes**: answers a slice of word-encoded
    /// `(visible set, Γ)` questions in one call. The default
    /// implementation is the sequential loop — one
    /// [`is_safe`](Self::is_safe) per probe — and is the executable
    /// specification batching implementations are property-tested
    /// against. [`MemoSafetyOracle`] overrides it to cache-partition the
    /// batch and answer all misses in **one kernel batch pass**, which
    /// is what makes the serving layer's group-index work amortize
    /// across requests.
    ///
    /// Like [`is_safe_hidden_word`](Self::is_safe_hidden_word), the word
    /// can only name attributes `0..64`; for wider modules each probe is
    /// answered through the set-based path.
    ///
    /// An **empty** probe slice returns an empty `Vec` immediately,
    /// touching no scratch and allocating nothing (a contract every
    /// override upholds — serving tiers forward client batches verbatim
    /// and empty windows are common).
    fn is_safe_batch(&self, probes: &[(u64, u128)]) -> Vec<bool> {
        if probes.is_empty() {
            return Vec::new();
        }
        probes
            .iter()
            .map(|&(w, gamma)| self.is_safe(&AttrSet::from_word(w), gamma))
            .collect()
    }

    /// The **versioned probe path**: the generation of the module
    /// relation the oracle currently answers for
    /// ([`StandaloneModule::epoch`]). Streaming consumers compare this
    /// against the epoch a derived result (requirement list, sweep
    /// antichain) was computed at to decide whether it is still
    /// current; memoizing implementations additionally stamp each cache
    /// entry with it.
    fn relation_epoch(&self) -> u64 {
        self.module().epoch()
    }

    /// Number of probes answered so far.
    fn calls(&self) -> u64;
}

/// Uninstrumented pass-through oracle over the interned kernel —
/// correct and fast, but re-evaluates every probe.
pub struct KernelOracle<'a> {
    module: &'a StandaloneModule,
    calls: AtomicU64,
}

impl<'a> KernelOracle<'a> {
    /// Borrows `module`.
    #[must_use]
    pub fn new(module: &'a StandaloneModule) -> Self {
        Self {
            module,
            calls: AtomicU64::new(0),
        }
    }
}

impl SafetyOracle for KernelOracle<'_> {
    fn module(&self) -> &StandaloneModule {
        self.module
    }

    fn privacy_level(&self, visible: &AttrSet) -> u128 {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.module.privacy_level(visible)
    }

    fn is_safe(&self, visible: &AttrSet, gamma: u128) -> bool {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.module.is_safe(visible, gamma)
    }

    fn is_safe_hidden_word(&self, hidden_word: u64, gamma: u128) -> bool {
        self.calls.fetch_add(1, Ordering::Relaxed);
        let k = self.module.k();
        if let Some(safe) = self.module.is_safe_word(!hidden_word & low_mask(k), gamma) {
            return safe;
        }
        self.module
            .is_safe_hidden(&AttrSet::from_word(hidden_word & low_mask(k)), gamma)
    }

    fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

/// The row-at-a-time seed semantics as an oracle — the executable
/// specification ([`sv_relation::ops::reference`]) and the benchmark
/// baseline the interned kernel is measured against.
pub struct NaiveOracle {
    module: StandaloneModule,
    calls: AtomicU64,
}

impl NaiveOracle {
    /// Wraps `module`.
    #[must_use]
    pub fn new(module: StandaloneModule) -> Self {
        Self {
            module,
            calls: AtomicU64::new(0),
        }
    }
}

impl SafetyOracle for NaiveOracle {
    fn module(&self) -> &StandaloneModule {
        &self.module
    }

    fn privacy_level(&self, visible: &AttrSet) -> u128 {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.module.privacy_level_naive(visible)
    }

    fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

/// The memoizing oracle: per visible set, the full privacy level is
/// computed once on the interned kernel and cached (word-keyed for
/// `k ≤ 64`, [`AttrSet`]-keyed beyond). Repeated `is_safe` queries —
/// for any Γ — are O(1) hash lookups with no allocation.
///
/// ### Concurrency: sharded read-mostly level caches
///
/// Every probe takes `&self`. The level caches are split into
/// `MEMO_SHARDS` (16) lock shards keyed by visible-word hash, so a **warm
/// hit takes only one shard read-lock** — N serving threads firing
/// warm probes at one shared instance proceed in parallel, and sweep
/// workers sharing the instance turn one worker's cache fill into warm
/// hits for all others. A miss computes the level *outside* any lock
/// (two racing threads may both compute the same level; both write the
/// identical epoch-stamped value, so correctness is unaffected and the
/// instrumentation counters are upper bounds under contention —
/// exact in any single-threaded run, which is what the counter-gated
/// benches use). The only `&mut self` operation is
/// [`append_execution`](Self::append_execution): Rust statically
/// guarantees no probe overlaps an append, which is what keeps the
/// epoch stamps race-free.
///
/// ### Streaming: epoch-stamped entries and the monotone shortcut
///
/// Every cache entry carries the relation epoch it was computed at.
/// When executions are appended
/// ([`append_execution`](Self::append_execution)), nothing is flushed:
/// a stale entry is revalidated **lazily** on its next probe, and the
/// grouped-counting structure of the Lemma-4 condition lets many
/// entries survive without touching the kernel at all. Appending rows
/// can only *grow* the distinct-output count of an existing
/// visible-input group; the privacy level can drop only when an append
/// creates a **new** visible-input group (a fresh group may contribute
/// a new, smaller minimum). The kernel tracks exactly that
/// ([`sv_relation::InternedRelation::group_new_group_epoch_word`]), so
/// a stale `is_safe(V, Γ)` with a cached level `≥ Γ` whose key grouping
/// gained no new group since the entry was stamped is answered `true`
/// from the cache — the cached level is a sound lower bound.
///
/// # Examples
/// ```
/// use sv_core::{MemoSafetyOracle, SafetyOracle, StandaloneModule};
/// use sv_relation::{AttrSet, Relation, Schema, Tuple};
///
/// let schema = Schema::booleans(&["i1", "i2", "o"]);
/// let rows = vec![vec![0, 0, 0], vec![0, 1, 1]];
/// let m = StandaloneModule::new(
///     Relation::from_values(schema, rows).unwrap(),
///     AttrSet::from_indices(&[0, 1]),
///     AttrSet::from_indices(&[2]),
/// )
/// .unwrap();
/// let mut oracle = MemoSafetyOracle::new(m);
/// // V = {i1, o}: i2 is hidden, so the group i1=0 shows 2 outputs.
/// let v = AttrSet::from_indices(&[0, 2]);
/// assert_eq!(oracle.privacy_level(&v), 2);
///
/// // Stream a new execution into the oracle's module: the cache entry
/// // is revalidated lazily, not flushed.
/// oracle.append_execution(&[Tuple::new(vec![1, 0, 1])]).unwrap();
/// assert_eq!(oracle.privacy_level(&v), 1, "new input group lowered the level");
/// ```
pub struct MemoSafetyOracle {
    module: StandaloneModule,
    /// Sharded visible word → (privacy level, epoch it was computed at).
    word_shards: Vec<RwLock<HashMap<u64, (u128, u64)>>>,
    /// Sharded wide-schema cache: canonical visible set → (level, epoch).
    wide_shards: Vec<RwLock<HashMap<AttrSet, (u128, u64)>>>,
    /// Pooled probe buffers for cache-miss kernel probes: each
    /// concurrently missing probe borrows its own buffer, so serving
    /// threads never contend on one scratch (sweep workers can pin a
    /// per-worker buffer via
    /// [`is_safe_hidden_word_with`](Self::is_safe_hidden_word_with)
    /// instead).
    scratch: ScratchPool,
    calls: AtomicU64,
    misses: AtomicU64,
    revalidations: AtomicU64,
    shortcut_hits: AtomicU64,
}

/// What the word cache knows about a probe without kernel work; see
/// [`MemoSafetyOracle::probe_word_cache`].
enum WordCacheProbe {
    /// The cache decides the probe: an epoch-current entry either way,
    /// or the monotone shortcut on a stale-but-sufficient one.
    Answer(bool),
    /// The level must be (re)computed; `stale` records whether an entry
    /// existed (making the recompute a revalidation).
    Compute { stale: bool },
}

impl MemoSafetyOracle {
    /// Wraps `module` with an empty cache.
    #[must_use]
    pub fn new(module: StandaloneModule) -> Self {
        Self {
            module,
            word_shards: (0..MEMO_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            wide_shards: (0..MEMO_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            scratch: ScratchPool::new(),
            calls: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            revalidations: AtomicU64::new(0),
            shortcut_hits: AtomicU64::new(0),
        }
    }

    /// The wrapped standalone module (read access; streaming goes
    /// through [`append_execution`](Self::append_execution)).
    #[must_use]
    pub fn module(&self) -> &StandaloneModule {
        &self.module
    }

    /// Probes that missed the cache (kernel evaluations).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Kernel evaluations that *refreshed* a stale (pre-append) entry —
    /// a subset of [`misses`](Self::misses).
    #[must_use]
    pub fn revalidations(&self) -> u64 {
        self.revalidations.load(Ordering::Relaxed)
    }

    /// Stale `is_safe` probes answered from the cache via the monotone
    /// lower bound, with zero kernel work.
    #[must_use]
    pub fn monotone_shortcut_hits(&self) -> u64 {
        self.shortcut_hits.load(Ordering::Relaxed)
    }

    /// Number of cached distinct visible sets.
    #[must_use]
    pub fn cached_levels(&self) -> usize {
        let words: usize = self
            .word_shards
            .iter()
            .map(|s| s.read().expect("memo shard lock").len())
            .sum();
        let wides: usize = self
            .wide_shards
            .iter()
            .map(|s| s.read().expect("memo shard lock").len())
            .sum();
        words + wides
    }

    /// Consumes the oracle, returning the module.
    #[must_use]
    pub fn into_module(self) -> StandaloneModule {
        self.module
    }

    /// Streams newly observed executions into the wrapped module
    /// ([`StandaloneModule::append_execution`]). Cached levels are kept
    /// and revalidated lazily against the new epoch on their next
    /// probe.
    ///
    /// # Errors
    /// Propagates append validation failures (domains, FD); on error
    /// the module and cache are unchanged.
    pub fn append_execution(&mut self, rows: &[sv_relation::Tuple]) -> Result<usize, CoreError> {
        self.module.append_execution(rows)
    }

    /// Computes and epoch-stamps the level of a masked visible word
    /// through a caller-supplied kernel scratch buffer, counting the
    /// miss (and the revalidation, when `stale`). Runs outside every
    /// shard lock.
    fn recompute_level_word(&self, visible_word: u64, stale: bool, scratch: &mut Vec<u64>) -> u128 {
        if stale {
            self.revalidations.fetch_add(1, Ordering::Relaxed);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let epoch = self.module.epoch();
        let level = self
            .module
            .privacy_level_word_with(visible_word, scratch)
            .unwrap_or_else(|| self.module.privacy_level(&AttrSet::from_word(visible_word)));
        self.word_shards[word_shard(visible_word)]
            .write()
            .expect("memo shard lock")
            .insert(visible_word, (level, epoch));
        level
    }

    /// Memoized level for a masked visible word (`k ≤ 64` path); warm
    /// hits never touch the scratch pool.
    fn level_word(&self, visible_word: u64) -> u128 {
        let epoch = self.module.epoch();
        let entry = self.word_shards[word_shard(visible_word)]
            .read()
            .expect("memo shard lock")
            .get(&visible_word)
            .copied();
        match entry {
            Some((l, e)) if e == epoch => l,
            other => self
                .scratch
                .with(|buf| self.recompute_level_word(visible_word, other.is_some(), buf)),
        }
    }

    /// The word cache's answer to `is_safe` **without kernel work**, if
    /// it has one: an epoch-current entry decides either way; a stale
    /// entry with a sufficient level still answers `true` when the
    /// visible-input grouping gained no new group since the stamp (the
    /// monotone shortcut — appends can only raise the Lemma-4 minimum
    /// then). [`WordCacheProbe::Compute`] means the probe must
    /// (re)compute the level. This is the single home of the shortcut
    /// soundness condition, shared by the sequential path
    /// ([`safe_word`](Self::safe_word)), the pinned-scratch sweep path,
    /// and the batch partition ([`SafetyOracle::is_safe_batch`]).
    /// Takes only one shard read-lock.
    fn probe_word_cache(&self, visible_word: u64, gamma: u128) -> WordCacheProbe {
        let entry = self.word_shards[word_shard(visible_word)]
            .read()
            .expect("memo shard lock")
            .get(&visible_word)
            .copied();
        let Some((l, e)) = entry else {
            return WordCacheProbe::Compute { stale: false };
        };
        if e == self.module.epoch() {
            return WordCacheProbe::Answer(l >= gamma);
        }
        if l >= gamma {
            // Stale but sufficient: still `true` if the visible-input
            // grouping gained no new group since the stamp.
            let iw = self.module.inputs().as_word().unwrap_or(0);
            if self
                .module
                .kernel()
                .group_new_group_epoch_word(iw & visible_word)
                .is_some_and(|ge| ge <= e)
            {
                self.shortcut_hits.fetch_add(1, Ordering::Relaxed);
                return WordCacheProbe::Answer(true);
            }
        }
        WordCacheProbe::Compute { stale: true }
    }

    /// `is_safe` on a masked visible word, taking the monotone shortcut
    /// for stale entries when it is sound (see the type-level docs).
    fn safe_word(&self, visible_word: u64, gamma: u128) -> bool {
        match self.probe_word_cache(visible_word, gamma) {
            WordCacheProbe::Answer(a) => a,
            WordCacheProbe::Compute { stale } => {
                self.scratch
                    .with(|buf| self.recompute_level_word(visible_word, stale, buf))
                    >= gamma
            }
        }
    }

    /// [`safe_word`](Self::safe_word) through a pinned scratch buffer —
    /// the sweep workers' probe form.
    fn safe_word_with(&self, visible_word: u64, gamma: u128, scratch: &mut Vec<u64>) -> bool {
        match self.probe_word_cache(visible_word, gamma) {
            WordCacheProbe::Answer(a) => a,
            WordCacheProbe::Compute { stale } => {
                self.recompute_level_word(visible_word, stale, scratch) >= gamma
            }
        }
    }

    /// Word-encoded hidden-set probe through a **caller-pinned** kernel
    /// scratch buffer: identical to
    /// [`SafetyOracle::is_safe_hidden_word`], but a cache miss runs the
    /// kernel pass through `scratch` instead of borrowing from the
    /// oracle's pool. The parallel sweep gives each worker its own
    /// buffer and shares one oracle, so shards share every cached level
    /// while never contending on probe buffers.
    #[must_use]
    pub fn is_safe_hidden_word_with(
        &self,
        hidden_word: u64,
        gamma: u128,
        scratch: &mut Vec<u64>,
    ) -> bool {
        self.calls.fetch_add(1, Ordering::Relaxed);
        if gamma <= 1 {
            return true;
        }
        let k = self.module.k();
        if k > 64 {
            let visible = AttrSet::from_word(hidden_word).complement(k);
            return self.safe_wide(&visible, gamma);
        }
        self.safe_word_with(!hidden_word & low_mask(k), gamma, scratch)
    }

    /// Memoized level through the wide ([`AttrSet`]-keyed) cache.
    fn level_wide(&self, visible: &AttrSet) -> u128 {
        // Canonicalize so sets differing only outside the schema share
        // a cache line.
        let canonical = visible.intersection(&self.module.schema().all_attrs());
        let epoch = self.module.epoch();
        let entry = self.wide_shards[wide_shard(&canonical)]
            .read()
            .expect("memo shard lock")
            .get(&canonical)
            .copied();
        if let Some((l, e)) = entry {
            if e == epoch {
                return l;
            }
            self.revalidations.fetch_add(1, Ordering::Relaxed);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let level = self.module.privacy_level(&canonical);
        self.wide_shards[wide_shard(&canonical)]
            .write()
            .expect("memo shard lock")
            .insert(canonical, (level, epoch));
        level
    }

    /// Wide-path `is_safe` with the monotone shortcut.
    fn safe_wide(&self, visible: &AttrSet, gamma: u128) -> bool {
        let canonical = visible.intersection(&self.module.schema().all_attrs());
        let entry = self.wide_shards[wide_shard(&canonical)]
            .read()
            .expect("memo shard lock")
            .get(&canonical)
            .copied();
        if let Some((l, e)) = entry {
            let epoch = self.module.epoch();
            if e == epoch {
                return l >= gamma;
            }
            if l >= gamma {
                let key = self.module.inputs().intersection(&canonical);
                if self
                    .module
                    .kernel()
                    .group_new_group_epoch(&key)
                    .is_some_and(|ge| ge <= e)
                {
                    self.shortcut_hits.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
            }
        }
        self.level_wide(&canonical) >= gamma
    }
}

impl SafetyOracle for MemoSafetyOracle {
    fn module(&self) -> &StandaloneModule {
        &self.module
    }

    fn privacy_level(&self, visible: &AttrSet) -> u128 {
        self.calls.fetch_add(1, Ordering::Relaxed);
        if self.module.k() <= 64 {
            if let Some(vw) = visible.as_word() {
                return self.level_word(vw & low_mask(self.module.k()));
            }
        }
        self.level_wide(visible)
    }

    fn is_safe(&self, visible: &AttrSet, gamma: u128) -> bool {
        self.calls.fetch_add(1, Ordering::Relaxed);
        if gamma <= 1 {
            return true;
        }
        if self.module.k() <= 64 {
            if let Some(vw) = visible.as_word() {
                return self.safe_word(vw & low_mask(self.module.k()), gamma);
            }
        }
        self.safe_wide(visible, gamma)
    }

    fn is_safe_hidden_word(&self, hidden_word: u64, gamma: u128) -> bool {
        self.calls.fetch_add(1, Ordering::Relaxed);
        if gamma <= 1 {
            return true;
        }
        let k = self.module.k();
        if k > 64 {
            // The word cannot name attrs ≥ 64: complement over all k
            // attributes and take the wide path.
            let visible = AttrSet::from_word(hidden_word).complement(k);
            return self.safe_wide(&visible, gamma);
        }
        self.safe_word(!hidden_word & low_mask(k), gamma)
    }

    /// The batched serving path: the batch is **cache-partitioned** —
    /// epoch-current entries (and stale-but-safe entries eligible for
    /// the monotone shortcut) answer from the memo with zero kernel
    /// work, and every remaining probe is deduplicated to its distinct
    /// visible word and answered in **one kernel batch pass**
    /// ([`StandaloneModule::privacy_level_words_batch_with`]). Each
    /// distinct missing visible set costs one kernel evaluation per
    /// batch, no matter how many requests (or Γ values) ask about it;
    /// the refreshed levels are epoch-stamped into the cache exactly as
    /// the sequential path would. Warm batches take only shard
    /// read-locks, so concurrent serving threads firing warm batches at
    /// one shared oracle proceed in parallel.
    fn is_safe_batch(&self, probes: &[(u64, u128)]) -> Vec<bool> {
        if probes.is_empty() {
            return Vec::new();
        }
        let k = self.module.k();
        if k > 64 {
            // Wide schemas have no word-keyed kernel batch; the
            // sequential wide path (which still memoizes) is the answer.
            return probes
                .iter()
                .map(|&(w, gamma)| self.is_safe(&AttrSet::from_word(w), gamma))
                .collect();
        }
        self.calls.fetch_add(probes.len() as u64, Ordering::Relaxed);
        let mask = low_mask(k);
        let epoch = self.module.epoch();
        let mut out = vec![false; probes.len()];
        // Cache partition: resolve what the memo can (epoch-current
        // entries and sound monotone shortcuts, via the same
        // `probe_word_cache` the sequential path uses), collect the rest.
        let mut pending: Vec<(usize, u64, u128)> = Vec::new();
        let mut miss_words: Vec<u64> = Vec::new();
        for (i, &(w, gamma)) in probes.iter().enumerate() {
            if gamma <= 1 {
                out[i] = true;
                continue;
            }
            let w = w & mask;
            match self.probe_word_cache(w, gamma) {
                WordCacheProbe::Answer(answer) => out[i] = answer,
                WordCacheProbe::Compute { .. } => {
                    pending.push((i, w, gamma));
                    miss_words.push(w);
                }
            }
        }
        if pending.is_empty() {
            return out;
        }
        // One kernel pass for the misses, deduplicated by visible word.
        miss_words.sort_unstable();
        miss_words.dedup();
        for &w in &miss_words {
            if self.word_shards[word_shard(w)]
                .read()
                .expect("memo shard lock")
                .contains_key(&w)
            {
                self.revalidations.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.misses
            .fetch_add(miss_words.len() as u64, Ordering::Relaxed);
        let mut levels: Vec<u128> = Vec::with_capacity(miss_words.len());
        if self
            .scratch
            .with(|buf| {
                self.module
                    .privacy_level_words_batch_with(&miss_words, buf, &mut levels)
            })
            .is_none()
        {
            // No word split (cannot happen for k ≤ 64 modules, whose
            // input/output sets always fit a word) — per-probe fallback.
            levels.extend(
                miss_words
                    .iter()
                    .map(|&w| self.module.privacy_level(&AttrSet::from_word(w))),
            );
        }
        for (&w, &l) in miss_words.iter().zip(&levels) {
            self.word_shards[word_shard(w)]
                .write()
                .expect("memo shard lock")
                .insert(w, (l, epoch));
        }
        for (i, w, gamma) in pending {
            let l = levels[miss_words.binary_search(&w).expect("deduplicated above")];
            out[i] = l >= gamma;
        }
        out
    }

    fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

/// Standalone **Secure-View** through an oracle: minimum-cost hidden
/// subset `V̄` such that the module is Γ-private w.r.t. `V = A \ V̄`,
/// by budget-pruned dense subset enumeration.
///
/// # Errors
/// [`CoreError::TooManyAttributes`] if `k > MAX_DENSE_ATTRS`.
///
/// # Panics
/// Panics unless `costs.len() == k`.
pub fn min_cost_safe_hidden(
    oracle: &dyn SafetyOracle,
    costs: &[u64],
    gamma: u128,
) -> Result<Option<(AttrSet, u64)>, CoreError> {
    let k = oracle.k();
    if k > MAX_DENSE_ATTRS {
        return Err(CoreError::TooManyAttributes {
            k,
            max: MAX_DENSE_ATTRS,
        });
    }
    assert_eq!(costs.len(), k, "one cost per attribute");
    let mut best: Option<(u64, u64)> = None; // (mask, cost)
    for mask in 0u64..(1u64 << k) {
        let cost: u64 = (0..k)
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| costs[i])
            .sum();
        if let Some((_, b)) = best {
            if cost >= b {
                continue;
            }
        }
        if oracle.is_safe_hidden_word(mask, gamma) {
            best = Some((mask, cost));
        }
    }
    Ok(best.map(|(mask, cost)| (AttrSet::from_word(mask), cost)))
}

/// All ⊆-minimal safe hidden subsets through an oracle — the module's
/// set-constraints requirement list `L_i` (§4.2). Safety is monotone in
/// the hidden set (Proposition 1), so these form an antichain
/// generating all safe hidden sets by superset closure.
///
/// This serial flat-scan walk is the **executable specification** for
/// the production path: [`crate::sweep::minimal_sets_sweep`] must
/// return exactly this list (the trie-backed [`crate::Frontier`] sweep
/// is property-tested against it in `tests/frontier_prop.rs`), and the
/// linear `minimal.iter().any(|&m| m & mask == m)` coverage test below
/// is the reference the sublinear `Frontier::covers` replaces. Keep it
/// simple; it is deliberately not optimized.
///
/// # Errors
/// [`CoreError::TooManyAttributes`] if `k > MAX_DENSE_ATTRS`.
pub fn minimal_safe_hidden_sets(
    oracle: &dyn SafetyOracle,
    gamma: u128,
) -> Result<Vec<AttrSet>, CoreError> {
    let k = oracle.k();
    if k > MAX_DENSE_ATTRS {
        return Err(CoreError::TooManyAttributes {
            k,
            max: MAX_DENSE_ATTRS,
        });
    }
    // Enumerate by increasing popcount: a safe set is minimal iff no
    // previously found (smaller) safe set is a subset of it.
    let mut masks: Vec<u64> = (0..(1u64 << k)).collect();
    masks.sort_by_key(|m| m.count_ones());
    let mut minimal: Vec<u64> = Vec::new();
    for mask in masks {
        #[allow(clippy::manual_contains)] // subset test, not equality
        if minimal.iter().any(|&m| m & mask == m) {
            continue; // superset of a known minimal safe set
        }
        if oracle.is_safe_hidden_word(mask, gamma) {
            minimal.push(mask);
        }
    }
    Ok(minimal.into_iter().map(AttrSet::from_word).collect())
}

/// One serving-layer safety question, addressed to a private module of
/// a workflow: *"is visible set `V` safe for `Γ` on module `m`?"* —
/// optionally conditioned on the relation epoch the client derived its
/// question from. Batches of these are routed by
/// [`WorkflowOracles::probe_batch`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProbeRequest {
    /// The private module the probe addresses.
    pub module: ModuleId,
    /// The visible attribute set `V` (module-local ids).
    pub visible: AttrSet,
    /// The privacy requirement Γ.
    pub gamma: u128,
    /// If set, the relation epoch this probe is conditioned on: the
    /// batch is rejected ([`CoreError::StaleEpoch`]) — touching no
    /// oracle state — when the module has moved past it.
    pub epoch: Option<u64>,
}

impl ProbeRequest {
    /// An unconditional probe (no epoch requirement).
    #[must_use]
    pub fn new(module: ModuleId, visible: AttrSet, gamma: u128) -> Self {
        Self {
            module,
            visible,
            gamma,
            epoch: None,
        }
    }

    /// Conditions the probe on a relation epoch.
    #[must_use]
    pub fn at_epoch(mut self, epoch: u64) -> Self {
        self.epoch = Some(epoch);
        self
    }
}

/// The answer to one [`ProbeRequest`], in request order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// The module the probe addressed.
    pub module: ModuleId,
    /// Whether the visible set is Γ-standalone-safe.
    pub safe: bool,
    /// The module's relation epoch the answer is valid at.
    pub epoch: u64,
}

/// One memoized safety oracle per **private** module of a workflow,
/// materialized once and shared across every consumer — requirement
/// lists, instance derivations, optimizers, benches. This is what makes
/// "identical safety queries are answered once per instance, regardless
/// of which optimizer asks" true end-to-end.
pub struct WorkflowOracles {
    entries: Vec<OracleEntry>,
    /// Module id → `entries` index, fixed at construction — the batch
    /// router's O(1) lookup ([`probe_batch`](Self::probe_batch)).
    by_id: HashMap<ModuleId, usize>,
    /// Seqlock sequence for epoch publication: odd while a publication
    /// is in flight, even when the published epochs are a consistent
    /// cut. [`epoch_snapshot`](Self::epoch_snapshot) spins on this
    /// instead of taking any module lock.
    epoch_seq: AtomicU64,
}

/// One private module's oracle plus the global attribute set needed to
/// slice workflow-level provenance rows down to the module sub-schema.
///
/// The oracle sits behind its **own** lock: probes and appends to
/// *different* modules never contend, which is what lets
/// [`WorkflowOracles::apply_batch`] mutate modules concurrently while
/// probes keep flowing to the others.
struct OracleEntry {
    id: ModuleId,
    /// The module's attributes in **global** (workflow-schema) ids.
    attrs: AttrSet,
    oracle: RwLock<MemoSafetyOracle>,
    /// The module's last *published* relation epoch. Guarded by the
    /// seqlock pair in [`WorkflowOracles::epoch_seq`], not by `oracle`'s
    /// lock — epoch readers never touch the module lock.
    published: AtomicU64,
}

impl OracleEntry {
    fn new(id: ModuleId, attrs: AttrSet, oracle: MemoSafetyOracle) -> Self {
        let published = AtomicU64::new(oracle.relation_epoch());
        Self {
            id,
            attrs,
            oracle: RwLock::new(oracle),
            published,
        }
    }

    fn read(&self) -> RwLockReadGuard<'_, MemoSafetyOracle> {
        self.oracle.read().expect("module oracle lock poisoned")
    }
}

/// A shared read guard over one module's memoized oracle, handed out by
/// [`WorkflowOracles::oracle`] / [`WorkflowOracles::iter`]. Derefs to
/// [`MemoSafetyOracle`], so probe call sites are unchanged; holding it
/// blocks only appends **to this module**, never the rest of the
/// workflow.
pub struct OracleGuard<'a> {
    guard: RwLockReadGuard<'a, MemoSafetyOracle>,
}

impl Deref for OracleGuard<'_> {
    type Target = MemoSafetyOracle;

    fn deref(&self) -> &MemoSafetyOracle {
        &self.guard
    }
}

/// A typed batch of workflow-schema provenance rows headed for ingest —
/// the unit of the batch-ingest surface
/// ([`WorkflowOracles::validate_batch`] →
/// [`WorkflowOracles::apply_batch`]). Frames are all-or-nothing: either
/// every row of the batch is applied to every module, or none is.
#[derive(Clone, Debug, Default)]
pub struct IngestBatch {
    rows: Vec<sv_relation::Tuple>,
}

impl IngestBatch {
    /// Wraps workflow-schema rows (e.g. from [`Workflow::run`]).
    #[must_use]
    pub fn new(rows: Vec<sv_relation::Tuple>) -> Self {
        Self { rows }
    }

    /// Builds a batch by cloning a row slice.
    #[must_use]
    pub fn from_rows(rows: &[sv_relation::Tuple]) -> Self {
        Self {
            rows: rows.to_vec(),
        }
    }

    /// The batch's rows, in arrival order.
    #[must_use]
    pub fn rows(&self) -> &[sv_relation::Tuple] {
        &self.rows
    }

    /// Number of rows in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the batch holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Proof that an [`IngestBatch`] validated against every module of a
/// [`WorkflowOracles`]: the per-module projections, ready to apply.
/// Produced by [`WorkflowOracles::validate_batch`], consumed by
/// [`WorkflowOracles::apply_batch`]; the validate→apply pair must be
/// serialized against other writers of the same instance (the serving
/// tier's per-tenant ingest lane provides exactly this).
pub struct ValidatedBatch {
    /// Per `entries` index: the batch's projections, batch order.
    projections: Vec<Vec<sv_relation::Tuple>>,
}

/// Batches at least this large (rows × modules) apply their per-module
/// mutations on scoped threads; smaller frames stay on the caller's
/// thread (spawn cost would dominate).
const PARALLEL_APPLY_MIN_WORK: usize = 256;

impl WorkflowOracles {
    /// Materializes each private module's relation (budget-capped) and
    /// wraps it in a [`MemoSafetyOracle`].
    ///
    /// # Errors
    /// Propagates module-materialization failures
    /// ([`CoreError::Workflow`] budget errors).
    pub fn for_workflow(workflow: &Workflow, budget: u128) -> Result<Self, CoreError> {
        let mut entries = Vec::new();
        for id in workflow.private_modules() {
            let sm = StandaloneModule::from_workflow_module(workflow, id, budget)?;
            entries.push(OracleEntry::new(
                id,
                workflow.module(id)?.attr_set(),
                MemoSafetyOracle::new(sm),
            ));
        }
        Ok(Self::from_entries(entries))
    }

    /// The **streaming** constructor: every private module starts with
    /// an empty relation (no executions recorded) and grows through
    /// [`ingest_execution`](Self::ingest_execution) /
    /// [`append_execution`](Self::append_execution) as provenance
    /// arrives. Privacy answers are with respect to the executions
    /// recorded so far.
    ///
    /// # Errors
    /// Propagates structural workflow errors.
    pub fn for_workflow_streaming(workflow: &Workflow) -> Result<Self, CoreError> {
        let mut entries = Vec::new();
        for id in workflow.private_modules() {
            let sm = StandaloneModule::empty_from_workflow_module(workflow, id)?;
            entries.push(OracleEntry::new(
                id,
                workflow.module(id)?.attr_set(),
                MemoSafetyOracle::new(sm),
            ));
        }
        Ok(Self::from_entries(entries))
    }

    fn from_entries(entries: Vec<OracleEntry>) -> Self {
        let by_id = entries.iter().enumerate().map(|(i, e)| (e.id, i)).collect();
        Self {
            entries,
            by_id,
            epoch_seq: AtomicU64::new(0),
        }
    }

    /// Exclusive access to one entry's oracle (no locking: `&mut self`
    /// proves no reader exists).
    fn oracle_mut(entry: &mut OracleEntry) -> &mut MemoSafetyOracle {
        entry.oracle.get_mut().expect("module oracle lock poisoned")
    }

    /// Re-reads every module's relation epoch and publishes the vector
    /// through the seqlock pair: bump to odd, store, bump back to even.
    /// Callers must be serialized with each other (the single-writer
    /// contract of the ingest lane / `&mut` ownership); concurrent
    /// [`epoch_snapshot`](Self::epoch_snapshot) readers retry instead
    /// of blocking.
    fn publish_epochs(&self) {
        self.epoch_seq.fetch_add(1, Ordering::AcqRel);
        for e in &self.entries {
            e.published
                .store(e.read().relation_epoch(), Ordering::Release);
        }
        self.epoch_seq.fetch_add(1, Ordering::AcqRel);
    }

    /// A consistent `(module, epoch)` cut across every module — the
    /// seqlock read side. Lock-free: never touches a module lock, so
    /// epoch reads (and probe-batch validation) proceed even while an
    /// append holds a module's write lock. Entries come back in
    /// `private_modules()` order.
    #[must_use]
    pub fn epoch_snapshot(&self) -> Vec<(ModuleId, u64)> {
        loop {
            let begin = self.epoch_seq.load(Ordering::Acquire);
            if begin & 1 == 0 {
                let snap: Vec<(ModuleId, u64)> = self
                    .entries
                    .iter()
                    .map(|e| (e.id, e.published.load(Ordering::Acquire)))
                    .collect();
                if self.epoch_seq.load(Ordering::Acquire) == begin {
                    return snap;
                }
            }
            std::hint::spin_loop();
        }
    }

    /// Validates a whole [`IngestBatch`] against every module under
    /// **read** locks — recorded-relation and in-batch functional
    /// dependencies, domains — without mutating anything. On success
    /// the returned [`ValidatedBatch`] carries the per-module
    /// projections for [`apply_batch`](Self::apply_batch).
    ///
    /// # Errors
    /// Propagates validation failures (domains, FD), row-indexed into
    /// the batch; no module state was touched.
    pub fn validate_batch(&self, batch: &IngestBatch) -> Result<ValidatedBatch, CoreError> {
        let mut projections = Vec::with_capacity(self.entries.len());
        for e in &self.entries {
            let projs: Vec<sv_relation::Tuple> =
                batch.rows().iter().map(|r| r.project(&e.attrs)).collect();
            e.read().module().validate_executions(&projs)?;
            projections.push(projs);
        }
        Ok(ValidatedBatch { projections })
    }

    /// Applies a validated batch: each module appends its projections
    /// under its **own** write lock — concurrently on scoped threads
    /// when the batch is large enough — then the new epochs are
    /// published through the seqlock pair. Probes to modules not
    /// currently under append proceed throughout.
    ///
    /// The validate→apply pair must be serialized against other writers
    /// of this instance (the per-tenant ingest lane, or `&mut`
    /// ownership). Returns the total number of new module rows.
    ///
    /// # Errors
    /// Propagates an append failure — only reachable when a racing
    /// writer violated the serialization contract between
    /// [`validate_batch`](Self::validate_batch) and this call; modules
    /// already applied are **not** rolled back.
    pub fn apply_batch(&self, validated: ValidatedBatch) -> Result<usize, CoreError> {
        let ValidatedBatch { projections } = validated;
        let rows = projections.first().map_or(0, Vec::len);
        let result =
            if rows * self.entries.len() >= PARALLEL_APPLY_MIN_WORK && self.entries.len() > 1 {
                std::thread::scope(|s| {
                    let workers: Vec<_> = self
                        .entries
                        .iter()
                        .zip(&projections)
                        .map(|(e, projs)| {
                            s.spawn(move || {
                                e.oracle
                                    .write()
                                    .expect("module oracle lock poisoned")
                                    .append_execution(projs)
                            })
                        })
                        .collect();
                    let mut added = 0usize;
                    let mut first_err = None;
                    for w in workers {
                        match w.join().expect("apply worker panicked") {
                            Ok(n) => added += n,
                            Err(e) if first_err.is_none() => first_err = Some(e),
                            Err(_) => {}
                        }
                    }
                    first_err.map_or(Ok(added), Err)
                })
            } else {
                let mut added = 0usize;
                for (e, projs) in self.entries.iter().zip(&projections) {
                    added += e
                        .oracle
                        .write()
                        .expect("module oracle lock poisoned")
                        .append_execution(projs)?;
                }
                Ok(added)
            };
        self.publish_epochs();
        result
    }

    /// Validates and applies one batch —
    /// [`validate_batch`](Self::validate_batch) then
    /// [`apply_batch`](Self::apply_batch). All-or-nothing: a batch that
    /// fails validation for any module mutates none.
    ///
    /// # Errors
    /// Propagates validation failures (domains, FD), row-indexed.
    pub fn ingest_batch(&self, batch: &IngestBatch) -> Result<usize, CoreError> {
        let validated = self.validate_batch(batch)?;
        self.apply_batch(validated)
    }

    /// Ingests one workflow execution (a full provenance row over the
    /// **workflow** schema, e.g. from [`Workflow::run`]): each private
    /// module appends its projection of the row. Returns the total
    /// number of new module rows (a module already holding its
    /// projection contributes 0 — only *its* caches stay fully warm).
    ///
    /// Atomic across modules: every projection is validated
    /// ([`StandaloneModule::validate_executions`]) before any module is
    /// touched, so a row that is invalid for one module mutates none.
    ///
    /// # Errors
    /// Propagates append validation failures (domains, FD).
    pub fn ingest_execution(&mut self, row: &sv_relation::Tuple) -> Result<usize, CoreError> {
        let projections: Vec<sv_relation::Tuple> =
            self.entries.iter().map(|e| row.project(&e.attrs)).collect();
        for (e, p) in self.entries.iter_mut().zip(&projections) {
            Self::oracle_mut(e)
                .module()
                .validate_executions(std::slice::from_ref(p))?;
        }
        let mut added = 0;
        for (e, p) in self.entries.iter_mut().zip(&projections) {
            added += Self::oracle_mut(e)
                .append_execution(std::slice::from_ref(p))
                .expect("validated above");
        }
        self.publish_epochs();
        Ok(added)
    }

    /// Streams executions (rows over the **module** sub-schema) into
    /// one module's oracle; see
    /// [`MemoSafetyOracle::append_execution`].
    ///
    /// # Errors
    /// [`CoreError::MissingOracle`] for an uncovered module id;
    /// propagates append validation failures.
    pub fn append_execution(
        &mut self,
        id: ModuleId,
        rows: &[sv_relation::Tuple],
    ) -> Result<usize, CoreError> {
        let &idx = self
            .by_id
            .get(&id)
            .ok_or(CoreError::MissingOracle { module: id.index() })?;
        let added = Self::oracle_mut(&mut self.entries[idx]).append_execution(rows)?;
        self.publish_epochs();
        Ok(added)
    }

    /// Replaces one module's state with rows recovered from durable
    /// storage ([`StandaloneModule::from_recovered`]): `rows` in kernel
    /// arrival order, `epoch` the recorded generation counter. The
    /// module gets a **fresh** memo (every cached level is dropped) —
    /// the restore path is also how compaction swaps in a rebuilt
    /// relation, where stale memos must not survive the epoch jump.
    ///
    /// # Errors
    /// [`CoreError::MissingOracle`] for an uncovered module id;
    /// propagates reconstruction failures (duplicate rows, FD
    /// violations) with the oracle unchanged.
    pub fn restore_module(
        &mut self,
        id: ModuleId,
        rows: &[sv_relation::Tuple],
        epoch: u64,
    ) -> Result<(), CoreError> {
        let &idx = self
            .by_id
            .get(&id)
            .ok_or(CoreError::MissingOracle { module: id.index() })?;
        let entry = &mut self.entries[idx];
        let restored = {
            let m = Self::oracle_mut(entry).module();
            StandaloneModule::from_recovered(
                m.schema().clone(),
                m.inputs().clone(),
                m.outputs().clone(),
                rows,
                epoch,
            )?
        };
        *Self::oracle_mut(entry) = MemoSafetyOracle::new(restored);
        self.publish_epochs();
        Ok(())
    }

    /// Rebuilds **every** listed module from a workflow-row **ledger**
    /// (full provenance rows in arrival order, e.g. a durable log's
    /// applied-row sequence): each module's rows are its projections of
    /// the ledger, first-occurrence order, duplicates dropped — exactly
    /// the state that replaying the ledger through
    /// [`ingest_execution`](Self::ingest_execution) would build — and
    /// its epoch is set to the recorded value (which after a compaction
    /// is *not* the row count, so it must travel explicitly).
    ///
    /// All-or-nothing: every module is reconstructed before any oracle
    /// is swapped, so a failure leaves `self` untouched. Each private
    /// module must be listed exactly once (a repeated id: last listing
    /// wins).
    ///
    /// # Errors
    /// [`CoreError::MissingOracle`] for an unknown id or a module left
    /// unlisted; propagates reconstruction failures.
    pub fn restore_ledger(
        &mut self,
        rows: &[sv_relation::Tuple],
        epochs: &[(ModuleId, u64)],
    ) -> Result<(), CoreError> {
        let mut restored: Vec<(usize, StandaloneModule)> = Vec::with_capacity(epochs.len());
        let mut covered = vec![false; self.entries.len()];
        for &(id, epoch) in epochs {
            let &idx = self
                .by_id
                .get(&id)
                .ok_or(CoreError::MissingOracle { module: id.index() })?;
            covered[idx] = true;
            let entry = &self.entries[idx];
            let mut seen = std::collections::HashSet::new();
            let mut module_rows = Vec::new();
            for row in rows {
                let p = row.project(&entry.attrs);
                if seen.insert(p.values().to_vec()) {
                    module_rows.push(p);
                }
            }
            let guard = entry.read();
            let m = guard.module();
            restored.push((
                idx,
                StandaloneModule::from_recovered(
                    m.schema().clone(),
                    m.inputs().clone(),
                    m.outputs().clone(),
                    &module_rows,
                    epoch,
                )?,
            ));
        }
        if let Some(i) = covered.iter().position(|&c| !c) {
            return Err(CoreError::MissingOracle {
                module: self.entries[i].id.index(),
            });
        }
        for (idx, sm) in restored {
            *Self::oracle_mut(&mut self.entries[idx]) = MemoSafetyOracle::new(sm);
        }
        self.publish_epochs();
        Ok(())
    }

    /// Routes a **mixed-module batch** of safety probes: requests are
    /// grouped per module and each module's sub-batch is answered by its
    /// memoized oracle in one [`SafetyOracle::is_safe_batch`] call, so
    /// group-index and cache work amortize across every request that
    /// shares a module — regardless of interleaving. Outcomes come back
    /// in request order.
    ///
    /// **Concurrent serving:** this takes `&self` — any number of
    /// serving threads fire batches at one shared instance, and warm
    /// batches (all modules' memos current) proceed fully in parallel
    /// on shard read-locks. Ingest runs concurrently through
    /// [`validate_batch`](Self::validate_batch) /
    /// [`apply_batch`](Self::apply_batch): a probe waits only for the
    /// one module currently under append (its `RwLock`), epoch
    /// validation is lock-free (seqlock), and a module sub-batch never
    /// observes a half-applied append. Clients guard against serving
    /// *around* an append with [`ProbeRequest::epoch`] — re-checked
    /// under each module's lock, so a raced append surfaces as
    /// [`CoreError::StaleEpoch`], never as a wrong-epoch answer.
    ///
    /// **Atomic rejection:** the whole batch is validated first — every
    /// request must name a covered module and (when
    /// [`ProbeRequest::epoch`] is set) match that module's current
    /// relation epoch. A batch containing an unknown module or a stale
    /// epoch fails *before any oracle is touched*, leaving every memo
    /// (and its counters) exactly as it was.
    ///
    /// # Errors
    /// [`CoreError::MissingOracle`] for an uncovered module id;
    /// [`CoreError::StaleEpoch`] for an epoch-conditioned probe whose
    /// module has a different epoch.
    ///
    /// # Examples
    /// ```
    /// use sv_core::safety::{ProbeRequest, WorkflowOracles};
    /// use sv_relation::AttrSet;
    /// use sv_workflow::{library::fig1_workflow, ModuleId};
    ///
    /// let oracles = WorkflowOracles::for_workflow(&fig1_workflow(), 1 << 20).unwrap();
    /// let batch = vec![
    ///     ProbeRequest::new(ModuleId(0), AttrSet::from_indices(&[0, 2, 4]), 4),
    ///     ProbeRequest::new(ModuleId(1), AttrSet::from_indices(&[0]), 2),
    ///     ProbeRequest::new(ModuleId(0), AttrSet::from_indices(&[0, 2, 4]), 8),
    /// ];
    /// let outcomes = oracles.probe_batch(&batch).unwrap();
    /// assert!(outcomes[0].safe, "Example 3: V = {{a1, a3, a5}} is 4-safe");
    /// assert!(!outcomes[2].safe, "…but not 8-safe");
    /// ```
    pub fn probe_batch(&self, requests: &[ProbeRequest]) -> Result<Vec<ProbeOutcome>, CoreError> {
        // Phase 1: resolve and validate every request — no oracle (and
        // therefore no memo state) is touched until the batch is known
        // to be fully addressable. Epochs come from the seqlock
        // publication, so validation never waits on an in-flight
        // append's module lock. Requests are bucketed per module in the
        // same pass, so routing stays O(requests) however many modules
        // the workflow has.
        let published: Vec<u64> = self
            .epoch_snapshot()
            .into_iter()
            .map(|(_, epoch)| epoch)
            .collect();
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); self.entries.len()];
        for (pos, r) in requests.iter().enumerate() {
            let &idx = self.by_id.get(&r.module).ok_or(CoreError::MissingOracle {
                module: r.module.index(),
            })?;
            if let Some(expected) = r.epoch {
                let actual = published[idx];
                if expected != actual {
                    return Err(CoreError::StaleEpoch {
                        module: r.module.index(),
                        expected,
                        actual,
                    });
                }
            }
            buckets[idx].push(pos);
        }
        // Phase 2: per-module sub-batches through the batched oracle
        // path, each under its module's read lock; wide visible sets
        // (no word encoding) fall back to the per-probe path of the
        // same oracle. Epoch conditions are re-checked under the lock:
        // an append that raced in after phase-1 validation surfaces as
        // `StaleEpoch`, never as an answer at the wrong epoch.
        let mut out: Vec<ProbeOutcome> = requests
            .iter()
            .map(|r| ProbeOutcome {
                module: r.module,
                safe: false,
                epoch: 0,
            })
            .collect();
        for (entry, bucket) in self.entries.iter().zip(&buckets) {
            if bucket.is_empty() {
                continue;
            }
            let oracle = entry.read();
            let epoch = oracle.relation_epoch();
            let mut word_positions: Vec<usize> = Vec::with_capacity(bucket.len());
            let mut word_probes: Vec<(u64, u128)> = Vec::with_capacity(bucket.len());
            for &pos in bucket {
                let r = &requests[pos];
                if let Some(expected) = r.epoch {
                    if expected != epoch {
                        return Err(CoreError::StaleEpoch {
                            module: r.module.index(),
                            expected,
                            actual: epoch,
                        });
                    }
                }
                out[pos].epoch = epoch;
                match r.visible.as_word() {
                    Some(w) => {
                        word_positions.push(pos);
                        word_probes.push((w, r.gamma));
                    }
                    None => out[pos].safe = oracle.is_safe(&r.visible, r.gamma),
                }
            }
            for (&pos, safe) in word_positions
                .iter()
                .zip(oracle.is_safe_batch(&word_probes))
            {
                out[pos].safe = safe;
            }
        }
        Ok(out)
    }

    /// The covered module ids, in `private_modules()` order.
    #[must_use]
    pub fn module_ids(&self) -> Vec<ModuleId> {
        self.entries.iter().map(|e| e.id).collect()
    }

    /// Shared access to one module's oracle — sufficient for every
    /// probe ([`SafetyOracle`] probes take `&self`), so serving threads
    /// can hold guards into one shared instance. The guard holds the
    /// module's read lock: probes to *other* modules, and the
    /// lock-free epoch reads, are unaffected.
    #[must_use]
    pub fn oracle(&self, id: ModuleId) -> Option<OracleGuard<'_>> {
        self.by_id.get(&id).map(|&i| OracleGuard {
            guard: self.entries[i].read(),
        })
    }

    /// Iterates `(id, oracle guard)` in `private_modules()` order.
    pub fn iter(&self) -> impl Iterator<Item = (ModuleId, OracleGuard<'_>)> {
        self.entries
            .iter()
            .map(|e| (e.id, OracleGuard { guard: e.read() }))
    }

    /// Total probes across all oracles.
    #[must_use]
    pub fn total_calls(&self) -> u64 {
        self.entries.iter().map(|e| e.read().calls()).sum()
    }

    /// Total cache misses (kernel evaluations) across all oracles.
    #[must_use]
    pub fn total_misses(&self) -> u64 {
        self.entries.iter().map(|e| e.read().misses()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_workflow::library::fig1_workflow;

    fn m1() -> StandaloneModule {
        StandaloneModule::from_workflow_module(&fig1_workflow(), ModuleId(0), 1 << 20).unwrap()
    }

    #[test]
    fn memo_agrees_with_kernel_and_naive_on_all_subsets() {
        let m = m1();
        let memo = MemoSafetyOracle::new(m.clone());
        let naive = NaiveOracle::new(m.clone());
        let kernel = KernelOracle::new(&m);
        for mask in 0u32..(1 << 5) {
            let visible = AttrSet::from_word(u64::from(mask));
            let a = memo.privacy_level(&visible);
            let b = naive.privacy_level(&visible);
            let c = kernel.privacy_level(&visible);
            assert_eq!(a, b, "mask={mask:#b}");
            assert_eq!(a, c, "mask={mask:#b}");
            for gamma in 1..=9u128 {
                assert_eq!(memo.is_safe(&visible, gamma), a >= gamma || gamma <= 1);
            }
        }
    }

    #[test]
    fn memo_answers_repeats_without_reevaluating() {
        let memo = MemoSafetyOracle::new(m1());
        let v = AttrSet::from_indices(&[0, 2, 4]);
        let first = memo.privacy_level(&v);
        let misses_after_first = memo.misses();
        for gamma in 1..=8u128 {
            let _ = memo.is_safe(&v, gamma);
        }
        let _ = memo.privacy_level(&v);
        assert_eq!(memo.privacy_level(&v), first);
        assert_eq!(memo.misses(), misses_after_first, "no further kernel work");
        assert!(memo.calls() > misses_after_first);
        assert_eq!(memo.cached_levels(), 1);
    }

    #[test]
    fn hidden_word_probes_share_the_cache_with_visible_probes() {
        let memo = MemoSafetyOracle::new(m1());
        // V = {0,2,4} ⇔ hidden {1,3}.
        let v = AttrSet::from_indices(&[0, 2, 4]);
        let level = memo.privacy_level(&v);
        let m0 = memo.misses();
        assert_eq!(memo.is_safe_hidden_word(0b01010, 4), level >= 4);
        assert_eq!(memo.misses(), m0, "word probe hits the same cache line");
    }

    #[test]
    fn oracle_enumerations_match_module_methods() {
        let m = m1();
        let memo = MemoSafetyOracle::new(m.clone());
        let (h1, c1) = min_cost_safe_hidden(&memo, &[10, 3, 9, 2, 9], 4)
            .unwrap()
            .unwrap();
        let (h2, c2) = m
            .min_cost_safe_hidden(&[10, 3, 9, 2, 9], 4)
            .unwrap()
            .unwrap();
        assert_eq!((h1, c1), (h2, c2));
        let a = minimal_safe_hidden_sets(&memo, 4).unwrap();
        let b = m.minimal_safe_hidden_sets(4).unwrap();
        assert_eq!(a, b);
        // The second enumeration re-used the first's cache: the lattice
        // has 32 subsets, so misses are bounded by 32.
        assert!(memo.misses() <= 32, "misses = {}", memo.misses());
        assert!(memo.calls() > memo.misses());
    }

    /// The Figure-1 m1 rows (local schema i1,i2 → o1,o2,o3).
    fn m1_rows() -> Vec<sv_relation::Tuple> {
        m1().relation().rows().to_vec()
    }

    #[test]
    fn streamed_module_levels_match_batch_build_at_every_step() {
        let full = m1();
        let mut streamed = StandaloneModule::new(
            sv_relation::Relation::empty(full.schema().clone()),
            full.inputs().clone(),
            full.outputs().clone(),
        )
        .unwrap();
        let mut memo = MemoSafetyOracle::new(streamed.clone());
        for (step, row) in m1_rows().into_iter().enumerate() {
            streamed
                .append_execution(std::slice::from_ref(&row))
                .unwrap();
            memo.append_execution(&[row]).unwrap();
            assert_eq!(memo.relation_epoch(), (step + 1) as u64);
            // Prefix-built module from scratch = the streamed one.
            let prefix = StandaloneModule::new(
                streamed.relation().clone(),
                streamed.inputs().clone(),
                streamed.outputs().clone(),
            )
            .unwrap();
            for mask in 0u32..(1 << 5) {
                let v = AttrSet::from_word(u64::from(mask));
                assert_eq!(
                    memo.privacy_level(&v),
                    prefix.privacy_level(&v),
                    "step={step} mask={mask:#b}"
                );
            }
        }
        assert_eq!(streamed.relation(), full.relation());
        assert!(memo.revalidations() > 0, "stale entries were refreshed");
    }

    #[test]
    fn monotone_shortcut_answers_safe_probes_without_kernel_work() {
        // (i1, i2) -> o with i2 over a size-3 domain, so executions can
        // keep arriving inside an existing visible-input group.
        let schema = sv_relation::Schema::new(vec![
            sv_relation::AttrDef {
                name: "i1".into(),
                domain: sv_relation::Domain::boolean(),
            },
            sv_relation::AttrDef {
                name: "i2".into(),
                domain: sv_relation::Domain::new(3),
            },
            sv_relation::AttrDef {
                name: "o".into(),
                domain: sv_relation::Domain::boolean(),
            },
        ]);
        let rel = sv_relation::Relation::from_values(
            schema,
            vec![vec![0, 0, 0], vec![0, 1, 1], vec![1, 0, 1], vec![1, 1, 0]],
        )
        .unwrap();
        let m = StandaloneModule::new(
            rel,
            AttrSet::from_indices(&[0, 1]),
            AttrSet::from_indices(&[2]),
        )
        .unwrap();
        let mut memo = MemoSafetyOracle::new(m);
        // V = {i1, o}: i2 hidden, so each visible-input group holds the
        // executions of all i2 values.
        let v = AttrSet::from_indices(&[0, 2]);
        assert_eq!(memo.privacy_level(&v), 2);
        let misses = memo.misses();
        // A new execution lands in the *existing* key group i1=1: no
        // new group, so the cached `is_safe(V, 2)` stays provably true.
        memo.append_execution(&[sv_relation::Tuple::new(vec![1, 2, 1])])
            .unwrap();
        assert!(memo.is_safe(&v, 2));
        assert_eq!(memo.misses(), misses, "shortcut: zero kernel work");
        assert_eq!(memo.monotone_shortcut_hits(), 1);
        // An exact level query must revalidate (the level may have
        // changed — here it stays 2).
        assert_eq!(memo.privacy_level(&v), 2);
        assert_eq!(memo.misses(), misses + 1);
        assert_eq!(memo.revalidations(), 1);
        // An execution opening a *new* key group (i1 never seen… all
        // i1 values are taken, so extend via a fresh i2 on group 0) —
        // new *pair*, same groups: shortcut still sound and taken.
        memo.append_execution(&[sv_relation::Tuple::new(vec![0, 2, 0])])
            .unwrap();
        assert!(memo.is_safe(&v, 2));
        assert_eq!(memo.monotone_shortcut_hits(), 2);
    }

    #[test]
    fn append_rejecting_fd_violation_leaves_oracle_consistent() {
        let mut memo = MemoSafetyOracle::new(m1());
        let v = AttrSet::from_indices(&[0, 2, 4]);
        let before = memo.privacy_level(&v);
        // m1 maps (0,0) ↦ (0,1,1); a contradicting output must fail.
        let bad = sv_relation::Tuple::new(vec![0, 0, 1, 0, 0]);
        assert_eq!(
            memo.append_execution(&[bad]),
            Err(CoreError::NotAFunction.at_row(0))
        );
        assert_eq!(memo.relation_epoch(), 0);
        assert_eq!(memo.privacy_level(&v), before);
    }

    #[test]
    fn batch_errors_carry_offending_row_index() {
        // Regression: a rejected multi-row append used to surface a
        // whole-batch `CoreError` with no position; it must name the
        // offending row's 0-based batch index.
        let mut memo = MemoSafetyOracle::new(m1());
        // Rows 0 and 1 duplicate recorded executions (valid); row 2
        // contradicts m1's recorded (1,1) ↦ (1,0,1).
        let ok_a = sv_relation::Tuple::new(vec![0, 0, 0, 1, 1]);
        let ok_b = sv_relation::Tuple::new(vec![0, 1, 1, 1, 0]);
        let bad = sv_relation::Tuple::new(vec![1, 1, 0, 0, 1]);
        let err = memo
            .append_execution(&[ok_a.clone(), ok_b, bad])
            .unwrap_err();
        assert_eq!(err.row_index(), Some(2));
        assert_eq!(err, CoreError::NotAFunction.at_row(2));
        assert!(err.to_string().contains("row 2"), "{err}");
        // Arity/domain failures are positioned the same way.
        let err = memo
            .append_execution(&[ok_a, sv_relation::Tuple::new(vec![9, 0, 0, 1, 1])])
            .unwrap_err();
        assert_eq!(err.row_index(), Some(1));
        assert!(matches!(
            err,
            CoreError::RowRejected { index: 1, ref source }
                if matches!(**source, CoreError::Relation(_))
        ));
        assert_eq!(memo.relation_epoch(), 0, "failed batches mutate nothing");
    }

    #[test]
    fn streaming_workflow_oracles_ingest_provenance_rows() {
        let w = fig1_workflow();
        let mut oracles = WorkflowOracles::for_workflow_streaming(&w).unwrap();
        assert_eq!(oracles.module_ids().len(), 3);
        // Nothing recorded yet: vacuously safe everywhere.
        {
            let o = oracles.oracle(ModuleId(0)).unwrap();
            assert_eq!(o.privacy_level(&AttrSet::new()), u128::MAX);
        }
        // Ingest every execution of the workflow's input space.
        let mut total = 0;
        for x0 in 0..2u32 {
            for x1 in 0..2u32 {
                let row = w.run(&[x0, x1]).unwrap();
                total += oracles.ingest_execution(&row).unwrap();
            }
        }
        assert!(total > 0);
        // Streamed oracles agree with modules batch-built from the same
        // observed provenance. (They need *not* agree with the
        // full-domain materialization of `for_workflow`: streaming
        // records only executions that actually happened.)
        for id in oracles.module_ids() {
            let streamed = oracles.oracle(id).unwrap();
            let rebuilt = StandaloneModule::new(
                streamed.module().relation().clone(),
                streamed.module().inputs().clone(),
                streamed.module().outputs().clone(),
            )
            .unwrap();
            let k = rebuilt.k();
            for mask in 0u64..(1 << k) {
                let v = AttrSet::from_word(mask);
                assert_eq!(
                    streamed.privacy_level(&v),
                    rebuilt.privacy_level(&v),
                    "module {id:?} mask {mask:#b}"
                );
            }
        }
        assert!(oracles.append_execution(ModuleId(9), &[]).is_err());
    }

    #[test]
    fn ingest_is_atomic_across_modules() {
        // A row whose projection is *fresh and valid* for m1 but
        // FD-contradicting for m2 must leave every module untouched.
        let w = fig1_workflow();
        let mut oracles = WorkflowOracles::for_workflow_streaming(&w).unwrap();
        let row1 = w.run(&[0, 0]).unwrap();
        oracles.ingest_execution(&row1).unwrap();

        // fig1 schema: a1,a2 (m1 inputs), a3..a5 (m1 outputs; a3,a4
        // feed m2, a4,a5 feed m3), a6 (m2 output), a7 (m3 output).
        // Fresh m1 input (0,1); m2/m3 inputs copied from row1; m2's
        // output flipped (contradiction); m3's output kept (duplicate).
        let mut bad = row1.clone();
        bad.set(sv_relation::AttrId(1), 1); // a2: (0,0) → (0,1), fresh for m1
        bad.set(sv_relation::AttrId(5), 1 - row1.get(sv_relation::AttrId(5)));
        let err = oracles.ingest_execution(&bad).unwrap_err();
        assert_eq!(err, CoreError::NotAFunction.at_row(0));

        for id in oracles.module_ids() {
            let o = oracles.oracle(id).unwrap();
            assert_eq!(
                o.module().relation().len(),
                1,
                "module {id:?} must be untouched after a failed ingest"
            );
            assert_eq!(o.relation_epoch(), 1, "module {id:?} epoch unchanged");
        }
        // The corrected row then lands everywhere.
        let row2 = w.run(&[0, 1]).unwrap();
        assert!(oracles.ingest_execution(&row2).unwrap() > 0);
    }

    #[test]
    fn batch_probes_match_sequential_and_dedup_kernel_work() {
        let m = m1();
        let memo = MemoSafetyOracle::new(m.clone());
        let naive = NaiveOracle::new(m.clone());
        // Every (visible word, Γ) pair, many duplicates, trivial Γ too.
        let probes: Vec<(u64, u128)> = (0u64..(1 << 5))
            .flat_map(|w| [1u128, 2, 4, 8, 9].map(|g| (w, g)))
            .chain([(0b00101, 4), (0b00101, 4)])
            .collect();
        let batched = memo.is_safe_batch(&probes);
        // The default trait impl (sequential loop) on the naive oracle
        // is the executable specification.
        assert_eq!(batched, naive.is_safe_batch(&probes));
        // 32 distinct visible words ⇒ exactly 32 kernel evaluations for
        // the whole batch, whatever the request count.
        assert_eq!(memo.misses(), 32);
        assert_eq!(memo.calls(), probes.len() as u64);
        // A repeat batch is pure cache hits.
        assert_eq!(memo.is_safe_batch(&probes), batched);
        assert_eq!(memo.misses(), 32);
        // Batch answers agree with the sequential memo path cache-line
        // for cache-line.
        let seq = MemoSafetyOracle::new(m);
        for (i, &(w, g)) in probes.iter().enumerate() {
            assert_eq!(seq.is_safe(&AttrSet::from_word(w), g), batched[i], "{i}");
        }
        assert_eq!(seq.misses(), memo.misses());
    }

    #[test]
    fn batch_probes_ride_epochs_and_the_monotone_shortcut() {
        // m1 minus one execution, so a fresh row can still arrive.
        let full = m1();
        let partial = sv_relation::Relation::from_rows(
            full.schema().clone(),
            full.relation().rows()[..3].to_vec(),
        )
        .unwrap();
        let mut memo = MemoSafetyOracle::new(
            StandaloneModule::new(partial, full.inputs().clone(), full.outputs().clone()).unwrap(),
        );
        let probes: Vec<(u64, u128)> = (0u64..(1 << 5)).map(|w| (w, 2)).collect();
        let first = memo.is_safe_batch(&probes);
        let misses = memo.misses();
        // Appending the held-back execution bumps the epoch; the next
        // batch must revalidate exactly the entries whose answers could
        // have changed and take the monotone shortcut for the rest.
        memo.append_execution(&full.relation().rows()[3..]).unwrap();
        let second = memo.is_safe_batch(&probes);
        assert!(
            memo.monotone_shortcut_hits() > 0,
            "stale-safe answers shortcut"
        );
        assert!(memo.misses() > misses, "changed groupings revalidate");
        // Equivalence against a from-scratch oracle over the new rows.
        let rebuilt = MemoSafetyOracle::new(
            StandaloneModule::new(
                memo.module().relation().clone(),
                memo.module().inputs().clone(),
                memo.module().outputs().clone(),
            )
            .unwrap(),
        );
        assert_eq!(second, rebuilt.is_safe_batch(&probes));
        let _ = first;
    }

    #[test]
    fn probe_batch_routes_mixed_modules_in_request_order() {
        let w = fig1_workflow();
        let oracles = WorkflowOracles::for_workflow(&w, 1 << 20).unwrap();
        let ids = oracles.module_ids();
        // Interleave modules deliberately.
        let mut requests = Vec::new();
        for round in 0..4u64 {
            for &id in &ids {
                requests.push(ProbeRequest::new(
                    id,
                    AttrSet::from_word(round * 7 % 16),
                    2 + u128::from(round),
                ));
            }
        }
        let outcomes = oracles.probe_batch(&requests).unwrap();
        assert_eq!(outcomes.len(), requests.len());
        // Sequential reference: same questions one at a time against
        // fresh oracles.
        let fresh = WorkflowOracles::for_workflow(&w, 1 << 20).unwrap();
        for (r, o) in requests.iter().zip(&outcomes) {
            assert_eq!(o.module, r.module);
            assert_eq!(o.epoch, 0);
            let seq = fresh.oracle(r.module).unwrap().is_safe(&r.visible, r.gamma);
            assert_eq!(o.safe, seq, "{r:?}");
        }
        // Epoch-conditioned probes pass at the current epoch.
        let ok = vec![ProbeRequest::new(ids[0], AttrSet::new(), 2).at_epoch(0)];
        assert!(oracles.probe_batch(&ok).is_ok());
    }

    #[test]
    fn probe_batch_rejects_bad_batches_without_touching_memos() {
        let w = fig1_workflow();
        let oracles = WorkflowOracles::for_workflow(&w, 1 << 20).unwrap();
        let ids = oracles.module_ids();
        // Warm some state so mutation would be observable.
        let warm = vec![ProbeRequest::new(
            ids[0],
            AttrSet::from_indices(&[0, 2, 4]),
            4,
        )];
        oracles.probe_batch(&warm).unwrap();
        let calls = oracles.total_calls();
        let misses = oracles.total_misses();

        // Unknown module in the middle of an otherwise valid batch.
        let bad = vec![
            ProbeRequest::new(ids[0], AttrSet::from_indices(&[0]), 2),
            ProbeRequest::new(ModuleId(99), AttrSet::new(), 2),
        ];
        assert!(matches!(
            oracles.probe_batch(&bad),
            Err(CoreError::MissingOracle { module: 99 })
        ));
        assert_eq!(
            (oracles.total_calls(), oracles.total_misses()),
            (calls, misses)
        );

        // Stale epoch: conditioned on a generation the module is not at.
        let stale = vec![
            ProbeRequest::new(ids[0], AttrSet::from_indices(&[0]), 2),
            ProbeRequest::new(ids[1], AttrSet::new(), 2).at_epoch(7),
        ];
        let err = oracles.probe_batch(&stale).unwrap_err();
        assert!(matches!(
            err,
            CoreError::StaleEpoch {
                expected: 7,
                actual: 0,
                ..
            }
        ));
        assert_eq!(
            (oracles.total_calls(), oracles.total_misses()),
            (calls, misses)
        );
    }

    #[test]
    fn workflow_oracles_cover_private_modules() {
        let w = fig1_workflow();
        let oracles = WorkflowOracles::for_workflow(&w, 1 << 20).unwrap();
        assert_eq!(oracles.module_ids().len(), 3);
        let o = oracles.oracle(ModuleId(0)).unwrap();
        assert!(o.is_safe(&AttrSet::from_indices(&[0, 2, 4]), 4));
        assert!(oracles.total_calls() >= 1);
        assert!(oracles.oracle(ModuleId(9)).is_none());
        assert!(oracles.total_misses() <= oracles.total_calls());
    }
}
