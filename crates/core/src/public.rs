//! General workflows with public modules (§5 of the paper).
//!
//! Standalone privacy does **not** compose in the presence of public
//! modules (Example 7: a public constant upstream, or a public
//! invertible function downstream, re-identifies a private module's
//! outputs). The fix is **privatization** (hiding the identity of
//! selected public modules), after which Theorem 8 restores the
//! Theorem-4 composition: hide `V̄ = ∪ V̄_i` over private modules and
//! keep visible only public modules whose attributes are all visible.

use crate::error::CoreError;
use std::collections::BTreeMap;
use sv_relation::AttrSet;
use sv_workflow::{ModuleId, Workflow};

/// A safe solution for a general workflow: hidden attributes plus the
/// set of privatized (hidden) public modules — the pair `(V, P̄)` of
/// §5.2, with `P` = visible publics being the complement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GeneralSafeView {
    /// Hidden attributes `V̄` (global ids).
    pub hidden_attrs: AttrSet,
    /// Privatized public modules (their names/identities are hidden).
    pub privatized: Vec<ModuleId>,
}

impl GeneralSafeView {
    /// Total cost under additive attribute costs and per-module
    /// privatization costs `c(m_j)` (§5.2's refined cost function).
    #[must_use]
    pub fn cost(&self, attr_costs: &[u64], module_costs: &BTreeMap<ModuleId, u64>) -> u64 {
        let a: u64 = self
            .hidden_attrs
            .iter()
            .map(|x| attr_costs[x.index()])
            .sum();
        let m: u64 = self
            .privatized
            .iter()
            .map(|id| module_costs.get(id).copied().unwrap_or(0))
            .sum();
        a + m
    }
}

/// The public modules that Theorem 8 requires privatizing for a given
/// hidden attribute set: every public module with a hidden input or
/// output ("all the input and output attributes of modules in `P`
/// are visible").
#[must_use]
pub fn required_privatizations(workflow: &Workflow, hidden: &AttrSet) -> Vec<ModuleId> {
    workflow
        .public_modules()
        .into_iter()
        .filter(|&id| {
            let m = &workflow.modules()[id.index()];
            !m.attr_set().is_disjoint(hidden)
        })
        .collect()
}

/// Theorem-8 assembly: given per-private-module standalone-safe hidden
/// sets (global ids), hide their union and privatize every public
/// module touching it.
#[must_use]
pub fn assemble_general(
    workflow: &Workflow,
    per_private_hidden: &BTreeMap<ModuleId, AttrSet>,
) -> GeneralSafeView {
    let hidden = crate::compose::compose_hidden_sets(
        &per_private_hidden.values().cloned().collect::<Vec<_>>(),
    );
    let privatized = required_privatizations(workflow, &hidden);
    GeneralSafeView {
        hidden_attrs: hidden,
        privatized,
    }
}

/// General-workflow analogue of
/// [`crate::compose::union_of_standalone_optima`]: per private module,
/// pick the standalone hidden set minimizing attribute cost **plus** the
/// privatization cost it induces, then assemble per Theorem 8.
///
/// This is a greedy baseline (the paper shows the real optimization is
/// `Ω(log n)`-hard even without data sharing, Theorem 9); `sv-optimize`
/// provides the LP-based algorithms.
///
/// # Errors
/// Propagates standalone-solver failures.
pub fn greedy_general_solution(
    workflow: &Workflow,
    attr_costs: &[u64],
    module_costs: &BTreeMap<ModuleId, u64>,
    gamma: u128,
    budget: u128,
) -> Result<(GeneralSafeView, u64), CoreError> {
    greedy_general_solution_sweep(
        workflow,
        attr_costs,
        module_costs,
        gamma,
        budget,
        crate::SweepConfig::serial(),
    )
    .map(|(view, cost, _)| (view, cost))
}

/// [`greedy_general_solution`] through the parallel lattice sweep
/// ([`crate::sweep`]), returning the merged visited/pruned counters.
///
/// # Errors
/// Propagates standalone-solver failures.
pub fn greedy_general_solution_sweep(
    workflow: &Workflow,
    attr_costs: &[u64],
    module_costs: &BTreeMap<ModuleId, u64>,
    gamma: u128,
    budget: u128,
    config: crate::SweepConfig,
) -> Result<(GeneralSafeView, u64, crate::SweepStats), CoreError> {
    let sweeper = crate::WorkflowSweeper::for_workflow(workflow, budget, config)?;
    greedy_general_with_sweeper(workflow, &sweeper, attr_costs, module_costs, gamma)
}

/// [`greedy_general_solution`] against a caller-owned
/// [`crate::WorkflowSweeper`]: modules stay materialized across repeated
/// calls (Γ sweeps, cost sweeps), and the per-attribute induced costs —
/// attribute cost plus the privatization costs of the public modules the
/// attribute drags in — are computed **once** over the global schema and
/// localized through the sweeper's hoisted slices, instead of being
/// rebuilt per private-module call.
///
/// # Errors
/// Propagates standalone-solver failures.
pub fn greedy_general_with_sweeper(
    workflow: &Workflow,
    sweeper: &crate::WorkflowSweeper,
    attr_costs: &[u64],
    module_costs: &BTreeMap<ModuleId, u64>,
    gamma: u128,
) -> Result<(GeneralSafeView, u64, crate::SweepStats), CoreError> {
    // Effective cost of hiding attribute a = its own cost plus the
    // privatization costs of public modules it newly drags in. The
    // interaction across choices is what makes the problem hard;
    // greedily we charge each attribute its full induced cost.
    let mut induced: Vec<u64> = attr_costs.to_vec();
    for pid in workflow.public_modules() {
        let pm = &workflow.modules()[pid.index()];
        let pc = module_costs.get(&pid).copied().unwrap_or(0);
        for a in pm.attr_set().iter() {
            induced[a.index()] += pc;
        }
    }
    let localized = sweeper.localize_costs(&induced);
    let mut per_private: BTreeMap<ModuleId, AttrSet> = BTreeMap::new();
    let mut stats = crate::SweepStats::default();
    for id in sweeper.module_ids() {
        let (found, s) = sweeper.module_min_cost(id, &localized, gamma)?;
        stats.merge(&s);
        let Some((local_hidden, _)) = found else {
            return Err(CoreError::BudgetExceeded {
                what: "no safe standalone subset exists for a private module",
                required: gamma,
                budget: 0,
            });
        };
        let global = sweeper
            .to_global(id, &local_hidden)
            .ok_or(CoreError::MissingOracle { module: id.index() })?;
        per_private.insert(id, global);
    }
    let view = assemble_general(workflow, &per_private);
    let cost = view.cost(attr_costs, module_costs);
    Ok((view, cost, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::WorldSearch;
    use crate::standalone::StandaloneModule;
    use sv_workflow::library::example8_chain;

    /// Example 7/8 chain with k = 2: public constant → private one-one
    /// → public invertible.
    fn chain() -> Workflow {
        example8_chain(2)
    }

    #[test]
    fn example7_standalone_safety_fails_in_workflow() {
        // Hide the private module's inputs (y0, y1 = global ids 2, 3):
        // standalone this gives Γ = 4 privacy for the one-one module,
        // but the public constant feeding it pins y = (1,1), so in every
        // world m_priv's output is visible: OUT collapses to 1.
        let w = chain();
        let hidden = AttrSet::from_indices(&[2, 3]);
        let visible = hidden.complement(w.schema().len());

        // Standalone: safe for Γ = 4.
        let sm = StandaloneModule::from_workflow_module(&w, ModuleId(1), 1 << 20).unwrap();
        let local_hidden = AttrSet::from_indices(&[0, 1]); // y0,y1 locally
        assert!(sm.is_safe_hidden(&local_hidden, 4));

        // In the workflow without privatization: collapse.
        let report = WorldSearch::new(&w, visible.clone()).run(1 << 26).unwrap();
        assert_eq!(report.min_out(ModuleId(1)), 1);

        // Privatizing the constant module restores privacy (Def. 6
        // frees its function).
        let report = WorldSearch::new(&w, visible)
            .with_privatized([ModuleId(0)])
            .run(1 << 26)
            .unwrap();
        assert!(report.min_out(ModuleId(1)) >= 4);
    }

    #[test]
    fn example7_invertible_downstream_also_breaks_privacy() {
        // Hide the private module's outputs (z0, z1 = ids 4, 5): the
        // public invertible module m_inv reveals z from its visible
        // outputs t.
        let w = chain();
        let hidden = AttrSet::from_indices(&[4, 5]);
        let visible = hidden.complement(w.schema().len());
        let report = WorldSearch::new(&w, visible.clone()).run(1 << 26).unwrap();
        assert_eq!(report.min_out(ModuleId(1)), 1);
        // Privatize m_inv ⇒ the worlds may remap its function, privacy
        // returns. (m_const still pins y, but y is visible here anyway —
        // inputs to m_priv are known, outputs are protected.)
        let report = WorldSearch::new(&w, visible)
            .with_privatized([ModuleId(2)])
            .run(1 << 26)
            .unwrap();
        assert!(report.min_out(ModuleId(1)) >= 4);
    }

    #[test]
    fn required_privatizations_touch_hidden_attrs() {
        let w = chain();
        // Hiding y (ids 2,3) touches m_const (outputs) and m_priv.
        let p = required_privatizations(&w, &AttrSet::from_indices(&[2, 3]));
        assert_eq!(p, vec![ModuleId(0)]);
        // Hiding z touches m_priv and m_inv.
        let p = required_privatizations(&w, &AttrSet::from_indices(&[4, 5]));
        assert_eq!(p, vec![ModuleId(2)]);
        // Hiding nothing touches nothing.
        assert!(required_privatizations(&w, &AttrSet::new()).is_empty());
    }

    #[test]
    fn assemble_general_unions_and_privatizes() {
        let w = chain();
        let mut per = BTreeMap::new();
        per.insert(ModuleId(1), AttrSet::from_indices(&[2, 3]));
        let view = assemble_general(&w, &per);
        assert_eq!(view.hidden_attrs, AttrSet::from_indices(&[2, 3]));
        assert_eq!(view.privatized, vec![ModuleId(0)]);
        let costs = vec![1u64; w.schema().len()];
        let mut mcosts = BTreeMap::new();
        mcosts.insert(ModuleId(0), 10u64);
        assert_eq!(view.cost(&costs, &mcosts), 12);
    }

    #[test]
    fn greedy_general_solution_is_verified_safe() {
        let w = chain();
        let attr_costs = vec![1u64; w.schema().len()];
        let mut mcosts = BTreeMap::new();
        mcosts.insert(ModuleId(0), 1u64);
        mcosts.insert(ModuleId(2), 1u64);
        let (view, cost) = greedy_general_solution(&w, &attr_costs, &mcosts, 4, 1 << 20).unwrap();
        assert!(cost > 0);
        let visible = view.hidden_attrs.complement(w.schema().len());
        let report = WorldSearch::new(&w, visible)
            .with_privatized(view.privatized.iter().copied())
            .run(1 << 26)
            .unwrap();
        assert!(report.min_out(ModuleId(1)) >= 4, "Theorem 8 guarantee");
    }

    #[test]
    fn greedy_sweep_parallel_matches_serial() {
        let w = chain();
        let attr_costs = vec![1u64; w.schema().len()];
        let mut mcosts = BTreeMap::new();
        mcosts.insert(ModuleId(0), 1u64);
        mcosts.insert(ModuleId(2), 1u64);
        let serial = greedy_general_solution(&w, &attr_costs, &mcosts, 4, 1 << 20).unwrap();
        for threads in [1usize, 4] {
            let (view, cost, stats) = greedy_general_solution_sweep(
                &w,
                &attr_costs,
                &mcosts,
                4,
                1 << 20,
                crate::SweepConfig::parallel(threads),
            )
            .unwrap();
            assert_eq!((view, cost), serial.clone(), "threads={threads}");
            assert_eq!(stats.visited + stats.pruned, stats.lattice);
        }
        // A sweeper survives repeated Γ calls without re-materializing.
        let sweeper =
            crate::WorkflowSweeper::for_workflow(&w, 1 << 20, crate::SweepConfig::serial())
                .unwrap();
        for gamma in [2u128, 4] {
            let (view, _, _) =
                greedy_general_with_sweeper(&w, &sweeper, &attr_costs, &mcosts, gamma).unwrap();
            let direct = greedy_general_solution(&w, &attr_costs, &mcosts, gamma, 1 << 20)
                .unwrap()
                .0;
            assert_eq!(view, direct, "gamma={gamma}");
        }
    }
}
