//! Workflow privacy from standalone guarantees (§4.1, Theorem 4), plus
//! an exhaustive workflow-privacy verifier over function-generated
//! possible worlds.
//!
//! Theorem 4: in an **all-private** workflow, if each module `m_i` is
//! Γ-standalone-private w.r.t. visible set `V_i`, then hiding
//! `V̄ = ∪_i V̄_i` makes every module Γ-workflow-private. The
//! [`compose_hidden_sets`] / [`union_of_standalone_optima`] functions
//! implement this assembly; [`WorldSearch`] verifies the resulting
//! guarantee semantically on small workflows.
//!
//! ### Scope of the exhaustive verifier
//!
//! `Worlds(R, V)` (Definition 4) ranges over arbitrary relations. The
//! verifier enumerates the **function-generated** worlds: every choice
//! of total functions `g_1 … g_n` (public modules pinned to their true
//! functions, Definition 4 condition 2; privatized ones freed,
//! Definition 6) whose induced execution relation has the same visible
//! projection as `R`. These are exactly the witnesses the paper's own
//! proofs construct (Lemma 1 flips *functions*), so `min |OUT_{x,W}|`
//! reported here is a **lower bound** on the true value — if it is
//! `≥ Γ`, the workflow is certified Γ-private. For the privacy *failures*
//! of Example 7, the collapse is forced in every world (function-
//! generated or not), so the verifier is decisive there too.

use crate::error::CoreError;
use crate::standalone::enumerate_mixed_radix;
use std::collections::{BTreeMap, BTreeSet};
use sv_relation::{AttrId, AttrSet, Tuple, Value};
use sv_workflow::{ModuleId, Visibility, Workflow};

/// Translates attribute sets between a module's local sub-schema
/// (as used by [`crate::StandaloneModule`]) and the workflow's global
/// schema.
#[derive(Clone, Debug)]
pub struct ModuleLens {
    module: ModuleId,
    /// Local position -> global attribute id (global-id order).
    globals: Vec<AttrId>,
}

impl ModuleLens {
    /// Builds the lens for module `id`.
    ///
    /// # Errors
    /// [`CoreError::Workflow`] if `id` is out of range.
    pub fn new(workflow: &Workflow, id: ModuleId) -> Result<Self, CoreError> {
        let m = workflow.module(id)?;
        Ok(Self {
            module: id,
            globals: m.attr_set().iter().collect(),
        })
    }

    /// The module this lens views.
    #[must_use]
    pub fn module(&self) -> ModuleId {
        self.module
    }

    /// Maps a local attribute set to global ids.
    #[must_use]
    pub fn to_global(&self, local: &AttrSet) -> AttrSet {
        AttrSet::from_iter(local.iter().map(|a| self.globals[a.index()]))
    }

    /// Maps a global attribute set to local ids (attributes outside the
    /// module are dropped).
    #[must_use]
    pub fn to_local(&self, global: &AttrSet) -> AttrSet {
        AttrSet::from_iter(
            self.globals
                .iter()
                .enumerate()
                .filter(|(_, g)| global.contains(**g))
                .map(|(l, _)| AttrId(l as u32)),
        )
    }
}

/// Theorem-4 assembly: the union of per-module hidden sets (given in
/// **global** coordinates) is a safe hidden set for the whole
/// all-private workflow.
#[must_use]
pub fn compose_hidden_sets(per_module_hidden: &[AttrSet]) -> AttrSet {
    let mut out = AttrSet::new();
    for h in per_module_hidden {
        out.union_with(h);
    }
    out
}

/// The *union-of-standalone-optima* baseline of Example 5: solve the
/// standalone Secure-View problem for every private module
/// independently (min-cost safe hidden subset w.r.t. `costs`) and hide
/// the union. Always safe (Theorem 4) but up to `Ω(n)` more expensive
/// than the workflow optimum.
///
/// Returns the global hidden set and its total cost.
///
/// # Errors
/// Propagates standalone-solver errors; fails with
/// [`CoreError::BudgetExceeded`] if some module admits no safe subset.
pub fn union_of_standalone_optima(
    workflow: &Workflow,
    costs: &[u64],
    gamma: u128,
    budget: u128,
) -> Result<(AttrSet, u64), CoreError> {
    union_of_standalone_optima_sweep(workflow, costs, gamma, budget, crate::SweepConfig::serial())
        .map(|(hidden, cost, _)| (hidden, cost))
}

/// [`union_of_standalone_optima`] through the parallel lattice sweep
/// ([`crate::sweep`]): modules are materialized once, cost slices are
/// hoisted out of the per-module loop, and each standalone optimum is
/// found by the work-stealing branch-and-bound sweep — or, when the
/// module's minimal-safe-set antichain is already memoized as a
/// [`crate::Frontier`], by pure frontier algebra
/// ([`crate::Frontier::min_cost_member`]) with **zero** lattice
/// re-enumeration. Also returns the merged visited/pruned counters for
/// observability.
///
/// # Errors
/// As [`union_of_standalone_optima`].
pub fn union_of_standalone_optima_sweep(
    workflow: &Workflow,
    costs: &[u64],
    gamma: u128,
    budget: u128,
    config: crate::SweepConfig,
) -> Result<(AttrSet, u64, crate::SweepStats), CoreError> {
    let sweeper = crate::WorkflowSweeper::for_workflow(workflow, budget, config)?;
    let localized = sweeper.localize_costs(costs);
    sweeper.union_of_optima(&localized, gamma)
}

/// [`union_of_standalone_optima`] against caller-owned per-module
/// safety oracles — repeated assemblies (cost sweeps, Γ sweeps) over
/// the same workflow share one memo. This is the **serial**
/// memo-sharing path; cold large-`k` assemblies should prefer
/// [`union_of_standalone_optima_sweep`].
///
/// # Errors
/// As [`union_of_standalone_optima`].
pub fn union_of_standalone_optima_with(
    workflow: &Workflow,
    oracles: &crate::safety::WorkflowOracles,
    costs: &[u64],
    gamma: u128,
) -> Result<(AttrSet, u64), CoreError> {
    assert_eq!(costs.len(), workflow.schema().len());
    let mut hidden = AttrSet::new();
    for id in workflow.private_modules() {
        let lens = ModuleLens::new(workflow, id)?;
        let local_costs: Vec<u64> = workflow
            .module(id)?
            .attr_set()
            .iter()
            .map(|a| costs[a.index()])
            .collect();
        let oracle = oracles
            .oracle(id)
            .ok_or(CoreError::MissingOracle { module: id.index() })?;
        let Some((local_hidden, _)) =
            crate::safety::min_cost_safe_hidden(&*oracle, &local_costs, gamma)?
        else {
            return Err(CoreError::BudgetExceeded {
                what: "no safe standalone subset exists for a module",
                required: gamma,
                budget: 0,
            });
        };
        hidden.union_with(&lens.to_global(&local_hidden));
    }
    let cost = hidden.iter().map(|a| costs[a.index()]).sum();
    Ok((hidden, cost))
}

/// Exhaustive search over function-generated possible worlds of a
/// workflow view (see module docs for scope).
pub struct WorldSearch<'a> {
    workflow: &'a Workflow,
    visible: AttrSet,
    privatized: BTreeSet<ModuleId>,
}

/// Result of a [`WorldSearch`]: per free module, per input tuple
/// `x ∈ π_{I_i}(R)`, the candidate-output set `OUT_{x,W}`.
///
/// Definition 5 deliberately uses an implication
/// (`∀t' ∈ R': x = π_{I_i}(t') ⇒ y = π_{O_i}(t')`): a world in which `x`
/// **never appears** as an input to `m_i` admits *every* output
/// vacuously. This matters in general workflows — privatizing an
/// upstream public module lets worlds route around `x`, which is exactly
/// how Theorem 8 restores privacy. The report therefore tracks, per
/// `(module, x)`, both the outputs observed in worlds containing `x` and
/// whether some world avoids `x` entirely.
#[derive(Debug)]
pub struct WorldReport {
    /// `(module, x) -> outputs` observed in worlds where `x` appears.
    pub out_sets: BTreeMap<(ModuleId, Tuple), BTreeSet<Tuple>>,
    /// `(module, x)` pairs for which some matching world avoids `x`
    /// (vacuous case of Definition 5: `OUT_{x,W}` = full output range).
    pub vacuous: BTreeSet<(ModuleId, Tuple)>,
    /// Per free module, the size of its full output range `∏|Δ_a|`.
    pub range_sizes: BTreeMap<ModuleId, u128>,
    /// Number of worlds that matched the visible projection.
    pub worlds_matched: u64,
}

impl WorldReport {
    /// `|OUT_{x,W}|` for one `(module, x)` pair.
    #[must_use]
    pub fn out_size(&self, module: ModuleId, x: &Tuple) -> u128 {
        let observed = self
            .out_sets
            .get(&(module, x.clone()))
            .map_or(0, |s| s.len() as u128);
        if self.vacuous.contains(&(module, x.clone())) {
            // Vacuous worlds contribute the entire range (which contains
            // every observed output).
            self.range_sizes.get(&module).copied().unwrap_or(0)
        } else {
            observed
        }
    }

    /// `min_x |OUT_{x,W}|` for the given module, or `u128::MAX` if the
    /// module never appears.
    #[must_use]
    pub fn min_out(&self, module: ModuleId) -> u128 {
        self.out_sets
            .keys()
            .filter(|(m, _)| *m == module)
            .map(|(m, x)| self.out_size(*m, x))
            .min()
            .unwrap_or(u128::MAX)
    }

    /// Whether every listed module attains `Γ` (Definition 5).
    #[must_use]
    pub fn is_gamma_private(&self, modules: &[ModuleId], gamma: u128) -> bool {
        modules.iter().all(|&m| self.min_out(m) >= gamma)
    }
}

impl<'a> WorldSearch<'a> {
    /// Creates a search for the given visible attribute set, with no
    /// privatized public modules.
    #[must_use]
    pub fn new(workflow: &'a Workflow, visible: AttrSet) -> Self {
        Self {
            workflow,
            visible,
            privatized: BTreeSet::new(),
        }
    }

    /// Marks public modules as privatized (their identities hidden), so
    /// their functions range freely (Definition 6).
    #[must_use]
    pub fn with_privatized(mut self, privatized: impl IntoIterator<Item = ModuleId>) -> Self {
        self.privatized.extend(privatized);
        self
    }

    /// Modules whose functions are free in the search (private ∪
    /// privatized-public).
    fn is_free(&self, id: ModuleId) -> bool {
        let m = &self.workflow.modules()[id.index()];
        m.visibility == Visibility::Private || self.privatized.contains(&id)
    }

    /// Runs the search.
    ///
    /// # Errors
    /// [`CoreError::BudgetExceeded`] if the candidate-world count
    /// exceeds `budget`; workflow errors if execution fails.
    pub fn run(&self, budget: u128) -> Result<WorldReport, CoreError> {
        let w = self.workflow;
        let schema = w.schema();
        let n_attrs = schema.len();

        let init: Vec<AttrId> = w.initial_inputs().to_vec();
        let init_sizes: Vec<u32> = init.iter().map(|&a| schema.attr(a).domain.size()).collect();
        let inputs = enumerate_mixed_radix(&init_sizes);
        let n_rows = inputs.len();

        // Original provenance rows (visible-projection targets).
        let orig: Vec<Tuple> = inputs.iter().map(|x| w.run(x)).collect::<Result<_, _>>()?;

        // Candidate function tables per module, in topo order.
        let topo: Vec<ModuleId> = w.topo_order().to_vec();
        let mut candidates: Vec<Vec<Vec<Vec<Value>>>> = Vec::with_capacity(topo.len());
        let mut total: u128 = 1;
        for &mid in &topo {
            let m = w.module(mid)?;
            let in_sizes: Vec<u32> = m
                .inputs
                .iter()
                .map(|&a| schema.attr(a).domain.size())
                .collect();
            let dom = enumerate_mixed_radix(&in_sizes);
            if self.is_free(mid) {
                let out_sizes: Vec<u32> = m
                    .outputs
                    .iter()
                    .map(|&a| schema.attr(a).domain.size())
                    .collect();
                let range = enumerate_mixed_radix(&out_sizes);
                let count = (range.len() as u128).saturating_pow(dom.len() as u32);
                total = total.saturating_mul(count);
                if total > budget {
                    return Err(CoreError::BudgetExceeded {
                        what: "workflow possible-world enumeration",
                        required: total,
                        budget,
                    });
                }
                let mut fns = Vec::with_capacity(count as usize);
                let mut digits = vec![0usize; dom.len()];
                loop {
                    fns.push(
                        digits
                            .iter()
                            .map(|&d| range[d].clone())
                            .collect::<Vec<Vec<Value>>>(),
                    );
                    let mut done = true;
                    for d in digits.iter_mut() {
                        *d += 1;
                        if *d < range.len() {
                            done = false;
                            break;
                        }
                        *d = 0;
                    }
                    if done {
                        break;
                    }
                }
                candidates.push(fns);
            } else {
                let truth: Vec<Vec<Value>> = dom
                    .iter()
                    .map(|x| m.apply(schema, x))
                    .collect::<Result<_, _>>()?;
                candidates.push(vec![truth]);
            }
        }

        // Per-depth determined attribute sets and visible targets.
        let mut determined = AttrSet::from_iter(init.iter().copied());
        let mut vis_targets: Vec<BTreeSet<Tuple>> = Vec::with_capacity(topo.len());
        let mut vis_dets: Vec<AttrSet> = Vec::with_capacity(topo.len());
        for &mid in &topo {
            let m = w.module(mid)?;
            determined.union_with(&m.output_set());
            let vis_det = determined.intersection(&self.visible);
            vis_targets.push(orig.iter().map(|t| t.project(&vis_det)).collect());
            vis_dets.push(vis_det);
        }

        let mut rows: Vec<Vec<Value>> = inputs
            .iter()
            .map(|x| {
                let mut v = vec![0u32; n_attrs];
                for (&a, &val) in init.iter().zip(x.iter()) {
                    v[a.index()] = val;
                }
                v
            })
            .collect();
        let free_mods: Vec<ModuleId> = topo.iter().copied().filter(|&m| self.is_free(m)).collect();
        let mut report = WorldReport {
            out_sets: BTreeMap::new(),
            vacuous: BTreeSet::new(),
            range_sizes: BTreeMap::new(),
            worlds_matched: 0,
        };
        // Track OUT for every x ∈ π_{I_i}(R) of every free module
        // (Definition 5 quantifies over the original relation's inputs).
        for &mid in &free_mods {
            let m = w.module(mid)?;
            report.range_sizes.insert(
                mid,
                m.outputs
                    .iter()
                    .map(|&a| u128::from(schema.attr(a).domain.size()))
                    .product(),
            );
            for t in &orig {
                let x = Tuple::new(m.inputs.iter().map(|&a| t.get(a)).collect());
                report.out_sets.entry((mid, x)).or_default();
            }
        }
        self.dfs(
            0,
            &topo,
            &candidates,
            &vis_dets,
            &vis_targets,
            &mut rows,
            n_rows,
            &free_mods,
            &mut report,
        );
        Ok(report)
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        depth: usize,
        topo: &[ModuleId],
        candidates: &[Vec<Vec<Vec<Value>>>],
        vis_dets: &[AttrSet],
        vis_targets: &[BTreeSet<Tuple>],
        rows: &mut Vec<Vec<Value>>,
        n_rows: usize,
        free_mods: &[ModuleId],
        report: &mut WorldReport,
    ) {
        if depth == topo.len() {
            report.worlds_matched += 1;
            for &mid in free_mods {
                let m = &self.workflow.modules()[mid.index()];
                let mut present: BTreeSet<Tuple> = BTreeSet::new();
                for row in rows.iter().take(n_rows) {
                    let x = Tuple::new(m.inputs.iter().map(|&a| row[a.index()]).collect());
                    let y = Tuple::new(m.outputs.iter().map(|&a| row[a.index()]).collect());
                    if let Some(set) = report.out_sets.get_mut(&(mid, x.clone())) {
                        set.insert(y);
                    }
                    present.insert(x);
                }
                // Definition 5's vacuous case: tracked inputs this world
                // never routes to m_i admit every output.
                let tracked: Vec<Tuple> = report
                    .out_sets
                    .keys()
                    .filter(|(m2, _)| *m2 == mid)
                    .map(|(_, x)| x.clone())
                    .collect();
                for x in tracked {
                    if !present.contains(&x) {
                        report.vacuous.insert((mid, x));
                    }
                }
            }
            return;
        }
        let mid = topo[depth];
        let m = &self.workflow.modules()[mid.index()];
        let schema = self.workflow.schema();
        let in_sizes: Vec<u32> = m
            .inputs
            .iter()
            .map(|&a| schema.attr(a).domain.size())
            .collect();
        let saved: Vec<Vec<Value>> = rows
            .iter()
            .map(|r| m.outputs.iter().map(|&a| r[a.index()]).collect())
            .collect();
        for table in &candidates[depth] {
            for row in rows.iter_mut().take(n_rows) {
                let mut idx = 0usize;
                for (&a, &d) in m.inputs.iter().zip(in_sizes.iter()) {
                    idx = idx * d as usize + row[a.index()] as usize;
                }
                for (&a, &v) in m.outputs.iter().zip(table[idx].iter()) {
                    row[a.index()] = v;
                }
            }
            let proj: BTreeSet<Tuple> = rows
                .iter()
                .take(n_rows)
                .map(|r| {
                    Tuple::new(
                        vis_dets[depth]
                            .iter()
                            .map(|a| r[a.index()])
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            if proj == vis_targets[depth] {
                self.dfs(
                    depth + 1,
                    topo,
                    candidates,
                    vis_dets,
                    vis_targets,
                    rows,
                    n_rows,
                    free_mods,
                    report,
                );
            }
        }
        for (row, s) in rows.iter_mut().zip(saved.iter()) {
            for (&a, &v) in m.outputs.iter().zip(s.iter()) {
                row[a.index()] = v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_workflow::library::{fig1_workflow, one_one_chain};

    #[test]
    fn lens_roundtrip_on_fig1_m2() {
        // m2 has attrs {a3, a4, a6} = globals {2, 3, 5}.
        let w = fig1_workflow();
        let lens = ModuleLens::new(&w, ModuleId(1)).unwrap();
        let local = AttrSet::from_indices(&[0, 2]); // a3, a6 locally
        let global = lens.to_global(&local);
        assert_eq!(global, AttrSet::from_indices(&[2, 5]));
        assert_eq!(lens.to_local(&global), local);
        // Global attrs outside the module are dropped.
        assert_eq!(
            lens.to_local(&AttrSet::from_indices(&[0, 2])),
            AttrSet::from_indices(&[0])
        );
    }

    #[test]
    fn compose_union() {
        let a = AttrSet::from_indices(&[1, 3]);
        let b = AttrSet::from_indices(&[3, 5]);
        assert_eq!(
            compose_hidden_sets(&[a, b]),
            AttrSet::from_indices(&[1, 3, 5])
        );
    }

    #[test]
    fn union_of_standalone_optima_is_workflow_safe_on_chain() {
        // 2-module one-one chain over 2 wires; Γ = 2.
        let w = one_one_chain(2, 2);
        let costs = vec![1u64; w.schema().len()];
        let (hidden, cost) = union_of_standalone_optima(&w, &costs, 2, 1 << 20).unwrap();
        assert!(cost >= 1);
        let visible = hidden.complement(w.schema().len());
        let report = WorldSearch::new(&w, visible).run(1 << 26).unwrap();
        assert!(report.is_gamma_private(&w.private_modules(), 2));
    }

    #[test]
    fn union_sweep_parallel_matches_serial_and_reports_counters() {
        let w = one_one_chain(2, 2);
        let costs = vec![1u64; w.schema().len()];
        let serial = union_of_standalone_optima(&w, &costs, 2, 1 << 20).unwrap();
        for threads in [1usize, 4] {
            let (hidden, cost, stats) = union_of_standalone_optima_sweep(
                &w,
                &costs,
                2,
                1 << 20,
                crate::SweepConfig::parallel(threads),
            )
            .unwrap();
            assert_eq!((hidden, cost), serial, "threads={threads}");
            assert_eq!(stats.visited + stats.pruned, stats.lattice);
        }
        // The memo-sharing oracle path agrees too.
        let oracles = crate::safety::WorkflowOracles::for_workflow(&w, 1 << 20).unwrap();
        let via_oracles = union_of_standalone_optima_with(&w, &oracles, &costs, 2).unwrap();
        assert_eq!(via_oracles, serial);
    }

    #[test]
    fn world_search_detects_unsafe_view() {
        // Everything visible ⇒ OUT is a singleton for every module.
        let w = one_one_chain(2, 2);
        let visible = w.schema().all_attrs();
        let report = WorldSearch::new(&w, visible).run(1 << 26).unwrap();
        for m in w.private_modules() {
            assert_eq!(report.min_out(m), 1);
        }
        assert!(!report.is_gamma_private(&w.private_modules(), 2));
    }

    #[test]
    fn world_search_counts_true_world() {
        let w = one_one_chain(1, 2);
        let report = WorldSearch::new(&w, w.schema().all_attrs())
            .run(1 << 20)
            .unwrap();
        assert!(report.worlds_matched >= 1);
    }

    #[test]
    fn budget_exceeded_reported() {
        let w = fig1_workflow();
        let err = WorldSearch::new(&w, AttrSet::new()).run(10).unwrap_err();
        assert!(matches!(err, CoreError::BudgetExceeded { .. }));
    }
}
