//! The tuple/function **flipping** construction of the paper's
//! Appendix B.3 (proof of Lemma 1), made executable.
//!
//! Given a module `m_i`, an input `x`, and a candidate output
//! `y ∈ OUT_{x,m_i}` (standalone), Lemma 2 provides a row `(x', y')` of
//! `R_i` agreeing with `(x, y)` on the visible attributes. Defining
//! `p = (x, y)`, `q = (x', y')` on `I_i ∪ O_i`, the flipped functions
//! `g_j = FLIP_{m_j,p,q}` (Definition 7) generate a possible world of the
//! workflow view in which `m_i` maps `x` to `y` — proving that standalone
//! privacy survives placement in an all-private workflow (Theorem 4).
//!
//! [`flip_witness_world`] builds that world as a full [`Workflow`] whose
//! provenance relation can be checked against the original view, turning
//! the paper's existence proof into a machine-checked certificate.

use crate::error::CoreError;
use sv_relation::{AttrId, AttrSet, Value};
use sv_workflow::{ModuleFn, ModuleId, Workflow};

/// The flip pair `(p, q)` over an attribute subset (Appendix B.3).
///
/// `FLIP_{p,q}` swaps, coordinate-wise on `attrs`, the values of `p` and
/// `q`: `v ↦ q[a]` if `v = p[a]`, `v ↦ p[a]` if `v = q[a]`, else `v`.
#[derive(Clone, Debug)]
pub struct FlipSpec {
    attrs: AttrSet,
    /// Full-schema-width value vectors; only positions in `attrs` are
    /// meaningful.
    p: Vec<Value>,
    q: Vec<Value>,
}

impl FlipSpec {
    /// Creates a flip spec for tuples `p`, `q` defined on `attrs`
    /// (values given in full-schema-width vectors).
    #[must_use]
    pub fn new(attrs: AttrSet, p: Vec<Value>, q: Vec<Value>) -> Self {
        debug_assert_eq!(p.len(), q.len());
        Self { attrs, p, q }
    }

    /// Flips a single attribute value.
    #[must_use]
    pub fn flip_value(&self, a: AttrId, v: Value) -> Value {
        if self.attrs.contains(a) {
            let (pv, qv) = (self.p[a.index()], self.q[a.index()]);
            if v == pv {
                qv
            } else if v == qv {
                pv
            } else {
                v
            }
        } else {
            v
        }
    }

    /// Flips a full-schema-width value vector in place.
    pub fn flip_row(&self, row: &mut [Value]) {
        for a in self.attrs.iter() {
            row[a.index()] = self.flip_value(a, row[a.index()]);
        }
    }

    /// `FLIP_{p,q}` is an involution: flipping twice is the identity.
    /// (Checked in tests; stated here as API contract.)
    #[must_use]
    pub fn attrs(&self) -> &AttrSet {
        &self.attrs
    }
}

/// Builds the flipped function `g_j = FLIP_{m_j,p,q}` (Definition 7):
/// `g_j(u) = FLIP(m_j(FLIP(u)))` with flips applied on the module's own
/// input/output attribute positions.
#[must_use]
pub fn flipped_module_fn(
    original: ModuleFn,
    input_attrs: Vec<AttrId>,
    output_attrs: Vec<AttrId>,
    spec: FlipSpec,
) -> ModuleFn {
    ModuleFn::closure(move |u: &[Value]| {
        let flipped_in: Vec<Value> = u
            .iter()
            .zip(input_attrs.iter())
            .map(|(&v, &a)| spec.flip_value(a, v))
            .collect();
        let out = original.apply(&flipped_in);
        out.iter()
            .zip(output_attrs.iter())
            .map(|(&v, &a)| spec.flip_value(a, v))
            .collect()
    })
}

/// Constructs the Lemma-1 witness world: an all-private workflow `W'`
/// (same structure as `workflow`, flipped functions) in whose provenance
/// relation module `target` maps `x` to `y`, while the visible
/// projection agrees with the original workflow's.
///
/// * `x` — input values for `target` in its **declared input order**;
/// * `y` — candidate output values in declared output order;
/// * `visible` — the global visible attribute set `V`.
///
/// Returns `None` if no Lemma-2 row `(x', y')` exists, i.e. `y` is not a
/// standalone candidate for `x` (then `y ∉ OUT_{x,m_i}` and no witness
/// should exist).
///
/// # Errors
/// Budget/structural errors from enumerating the target module's domain.
pub fn flip_witness_world(
    workflow: &Workflow,
    target: ModuleId,
    x: &[Value],
    y: &[Value],
    visible: &AttrSet,
    budget: u128,
) -> Result<Option<Workflow>, CoreError> {
    let schema = workflow.schema();
    let m = workflow.module(target)?;
    assert_eq!(x.len(), m.inputs.len(), "x must cover the target's inputs");
    assert_eq!(
        y.len(),
        m.outputs.len(),
        "y must cover the target's outputs"
    );

    let vis_in: Vec<AttrId> = m
        .inputs
        .iter()
        .copied()
        .filter(|a| visible.contains(*a))
        .collect();
    let vis_out: Vec<AttrId> = m
        .outputs
        .iter()
        .copied()
        .filter(|a| visible.contains(*a))
        .collect();

    // Lemma 2: find (x', y') in R_i with matching visible parts.
    let n = m.domain_size(schema);
    if n > budget {
        return Err(CoreError::BudgetExceeded {
            what: "target-module domain enumeration",
            required: n,
            budget,
        });
    }
    let sizes: Vec<u32> = m
        .inputs
        .iter()
        .map(|&a| schema.attr(a).domain.size())
        .collect();
    let mut witness: Option<(Vec<Value>, Vec<Value>)> = None;
    for xp in crate::standalone::enumerate_mixed_radix(&sizes) {
        let yp = m.apply(schema, &xp)?;
        let in_ok = vis_in.iter().all(|&a| {
            let pos = m.inputs.iter().position(|&b| b == a).expect("input attr");
            x[pos] == xp[pos]
        });
        let out_ok = vis_out.iter().all(|&a| {
            let pos = m.outputs.iter().position(|&b| b == a).expect("output attr");
            y[pos] == yp[pos]
        });
        if in_ok && out_ok {
            witness = Some((xp, yp));
            break;
        }
    }
    let Some((xp, yp)) = witness else {
        return Ok(None);
    };

    // Build p = (x, y), q = (x', y') as full-width vectors on I_i ∪ O_i.
    let width = schema.len();
    let mut p = vec![0u32; width];
    let mut q = vec![0u32; width];
    for (pos, &a) in m.inputs.iter().enumerate() {
        p[a.index()] = x[pos];
        q[a.index()] = xp[pos];
    }
    for (pos, &a) in m.outputs.iter().enumerate() {
        p[a.index()] = y[pos];
        q[a.index()] = yp[pos];
    }
    let spec = FlipSpec::new(m.attr_set(), p, q);

    // Replace every module m_j by g_j = FLIP_{m_j,p,q}.
    let mut world = workflow.clone();
    for (j, mj) in workflow.modules().iter().enumerate() {
        let g = flipped_module_fn(
            mj.func.clone(),
            mj.inputs.clone(),
            mj.outputs.clone(),
            spec.clone(),
        );
        world = world.with_function(ModuleId(j as u32), g)?;
    }
    Ok(Some(world))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_relation::{project, Tuple};
    use sv_workflow::library::fig1_workflow;

    #[test]
    fn flip_is_involution() {
        let attrs = AttrSet::from_indices(&[0, 2]);
        let spec = FlipSpec::new(attrs, vec![1, 9, 0], vec![0, 9, 1]);
        for v in [0u32, 1] {
            for a in [AttrId(0), AttrId(2)] {
                let once = spec.flip_value(a, v);
                assert_eq!(spec.flip_value(a, once), v);
            }
        }
        // Attributes outside the spec are untouched.
        assert_eq!(spec.flip_value(AttrId(1), 5), 5);
    }

    #[test]
    fn flip_row_swaps_p_and_q() {
        let attrs = AttrSet::from_indices(&[0, 1]);
        let spec = FlipSpec::new(attrs, vec![0, 0], vec![1, 1]);
        let mut row = vec![0, 1];
        spec.flip_row(&mut row);
        assert_eq!(row, vec![1, 0]);
    }

    #[test]
    fn lemma2_example_from_paper() {
        // Paper's illustration after Lemma 2: module m1,
        // V = {a1, a3, a5}, x = (0,0), y = (1,0,0). The witness row is
        // x' = (0,1), y' = (1,1,0).
        let w = fig1_workflow();
        let visible = AttrSet::from_indices(&[0, 2, 4]);
        let world = flip_witness_world(&w, ModuleId(0), &[0, 0], &[1, 0, 0], &visible, 1 << 20)
            .unwrap()
            .expect("y ∈ OUT_x so a witness must exist");
        // In the witness world, m1(0,0) = (1,0,0).
        let t = world.run(&[0, 0]).unwrap();
        assert_eq!(&t.values()[2..5], &[1, 0, 0]);
        // And the visible projection of the full provenance relation is
        // unchanged (Lemma 1's conclusion).
        let orig = w.provenance_relation(1 << 10).unwrap();
        let flipped = world.provenance_relation(1 << 10).unwrap();
        assert_eq!(project(&orig, &visible), project(&flipped, &visible));
    }

    #[test]
    fn witness_exists_iff_standalone_candidate() {
        // For every x and every candidate y, a witness world exists and
        // preserves the view; for non-candidates it does not.
        let w = fig1_workflow();
        let visible = AttrSet::from_indices(&[0, 2, 4]); // hide a2, a4
        let m = crate::StandaloneModule::from_workflow_module(&w, ModuleId(0), 1 << 20).unwrap();
        let local_visible = AttrSet::from_indices(&[0, 2, 4]); // same ids for m1
        let outs = crate::worlds::out_sets_bruteforce(&m, &local_visible, 1 << 30).unwrap();
        let orig = w.provenance_relation(1 << 10).unwrap();
        for (x, out_set) in &outs {
            for y in m.output_range() {
                let y_t = Tuple::new(y.clone());
                let world =
                    flip_witness_world(&w, ModuleId(0), x.values(), &y, &visible, 1 << 20).unwrap();
                match world {
                    Some(world) => {
                        // Witness ⇒ y is a candidate, and view preserved.
                        assert!(out_set.contains(&y_t), "x={x:?} y={y_t:?}");
                        let flipped = world.provenance_relation(1 << 10).unwrap();
                        assert_eq!(
                            project(&orig, &visible),
                            project(&flipped, &visible),
                            "view changed for x={x:?}, y={y_t:?}"
                        );
                        let t = world.run(x.values()).unwrap();
                        assert_eq!(&t.values()[2..5], y.as_slice());
                    }
                    None => {
                        assert!(!out_set.contains(&y_t), "missed candidate {y_t:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn lemma7_public_modules_untouched_when_disjoint() {
        // If a module shares no attribute with the flip spec, g_j = m_j.
        let w = fig1_workflow();
        let m3 = &w.modules()[2];
        // Flip spec over m2's attrs only (a3, a4, a6 = ids 2,3,5); m3
        // shares a4 — so instead use a spec over {a6} alone (id 5).
        let spec = FlipSpec::new(AttrSet::from_indices(&[5]), vec![0; 7], {
            let mut q = vec![0; 7];
            q[5] = 1;
            q
        });
        let g = flipped_module_fn(m3.func.clone(), m3.inputs.clone(), m3.outputs.clone(), spec);
        for a4 in 0..2 {
            for a5 in 0..2 {
                assert_eq!(g.apply(&[a4, a5]), m3.func.apply(&[a4, a5]));
            }
        }
    }
}
