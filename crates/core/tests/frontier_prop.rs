//! Seeded-PRNG property suite for the bitwise-trie frontier engine:
//! **`Frontier` ≡ flat `Vec<u64>` scan** on random antichains
//! (covers / dominated_by / union / intersect / minimality-on-insert /
//! iteration order), and **trie-backed `minimal_sets_sweep` ≡ serial
//! `safety::minimal_safe_hidden_sets` ≡ brute-force possible worlds**
//! on random modules (k ≤ 12, mixed thread counts), including the
//! empty-antichain and full-layer-cutoff edges.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sv_core::safety::{self, KernelOracle};
use sv_core::sweep::{minimal_sets_sweep, minimal_sets_sweep_frontier, SweepConfig};
use sv_core::{worlds, Frontier, StandaloneModule};
use sv_relation::{AttrDef, AttrSet, Domain, Relation, Schema};

/// Flat-scan reference: ⊆-minimize `masks` in (popcount, mask) order —
/// the exact walk `safety::minimal_safe_hidden_sets` performs.
fn minimize(mut masks: Vec<u64>) -> Vec<u64> {
    masks.sort_unstable();
    masks.dedup();
    masks.sort_by_key(|m| m.count_ones());
    let mut minimal: Vec<u64> = Vec::new();
    for mask in masks {
        if !minimal.iter().any(|&m| m | mask == mask) {
            minimal.push(mask);
        }
    }
    minimal
}

/// Flat-scan `covers`: ∃ member ⊆ `mask`.
fn flat_covers(members: &[u64], mask: u64) -> bool {
    members.iter().any(|&m| m | mask == mask)
}

/// Flat-scan `dominated_by`: ∃ member ⊇ `mask`.
fn flat_dominated(members: &[u64], mask: u64) -> bool {
    members.iter().any(|&m| m & mask == mask)
}

/// Random mask set (not necessarily an antichain) over `k` bits.
fn random_masks(rng: &mut StdRng, k: u32, n: usize) -> Vec<u64> {
    let top = 1u64 << k;
    (0..n).map(|_| rng.gen_range(0..top)).collect()
}

/// Query masks: exhaustive when the lattice is small, sampled otherwise.
fn query_masks(rng: &mut StdRng, k: u32) -> Vec<u64> {
    if k <= 10 {
        (0..(1u64 << k)).collect()
    } else {
        let mut q = random_masks(rng, k, 512);
        q.push(0);
        q.push((1u64 << k) - 1);
        q
    }
}

#[test]
fn frontier_queries_match_flat_scans_on_random_antichains() {
    let mut rng = StdRng::seed_from_u64(0xF406);
    for trial in 0..24 {
        let k = rng.gen_range(1..=16u32);
        let n = rng.gen_range(0..=96);
        let raw = random_masks(&mut rng, k, n);
        let reference = minimize(raw.clone());

        // Insertion in a shuffled (non-minimized) order must still
        // converge to the canonical minimal antichain.
        let mut shuffled = raw.clone();
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, rng.gen_range(0..=i));
        }
        let mut f = Frontier::new(k as usize);
        for &m in &shuffled {
            f.insert(m);
        }
        assert_eq!(
            f.iter().collect::<Vec<_>>(),
            reference,
            "trial={trial} k={k}: iteration must be the minimized \
             (popcount, mask) order"
        );
        assert_eq!(f.len(), reference.len());
        assert_eq!(f, Frontier::from_masks(k as usize, raw.clone()));

        // Re-inserting any member or any covered mask is a no-op.
        for &m in &reference {
            let mut g = f.clone();
            assert!(!g.insert(m), "members are already covered");
            assert_eq!(g, f);
        }

        for q in query_masks(&mut rng, k) {
            assert_eq!(
                f.covers(q),
                flat_covers(&reference, q),
                "trial={trial} k={k} covers({q:#b})"
            );
            assert_eq!(
                f.dominated_by(q),
                flat_dominated(&reference, q),
                "trial={trial} k={k} dominated_by({q:#b})"
            );
        }
    }
}

#[test]
fn union_and_intersect_match_flat_up_set_semantics() {
    let mut rng = StdRng::seed_from_u64(0xA17);
    for trial in 0..16 {
        let k = rng.gen_range(1..=9u32);
        let na = rng.gen_range(0..=40);
        let a_raw = random_masks(&mut rng, k, na);
        let nb = rng.gen_range(0..=40);
        let b_raw = random_masks(&mut rng, k, nb);
        let a_ref = minimize(a_raw.clone());
        let b_ref = minimize(b_raw.clone());
        let a = Frontier::from_masks(k as usize, a_raw);
        let b = Frontier::from_masks(k as usize, b_raw);

        let u = a.union(&b);
        let i = a.intersect(&b);
        // The results are themselves canonical minimal antichains.
        let mut joined = a_ref.clone();
        joined.extend(&b_ref);
        assert_eq!(u, Frontier::from_masks(k as usize, joined));

        // Up-set semantics, membership-tested over the whole lattice:
        // ↑(A ∪ B) = ↑A ∪ ↑B and ↑(A ⊓ B) = ↑A ∩ ↑B.
        for q in 0..(1u64 << k) {
            let in_a = flat_covers(&a_ref, q);
            let in_b = flat_covers(&b_ref, q);
            assert_eq!(u.covers(q), in_a || in_b, "trial={trial} union({q:#b})");
            assert_eq!(i.covers(q), in_a && in_b, "trial={trial} intersect({q:#b})");
        }
    }
}

/// Random standalone module, as in `sweep_prop.rs`: domain sizes 2–3,
/// random input/output split, rows deduplicated on the inputs.
fn random_module(rng: &mut StdRng, k_max: usize, max_rows: usize) -> StandaloneModule {
    let k = rng.gen_range(3..=k_max);
    let ni = rng.gen_range(1..k);
    let attrs: Vec<AttrDef> = (0..k)
        .map(|i| AttrDef {
            name: format!("a{i}"),
            domain: Domain::new(rng.gen_range(2..=3)),
        })
        .collect();
    let schema = Schema::new(attrs);
    let mut ids: Vec<u32> = (0..k as u32).collect();
    for i in (1..ids.len()).rev() {
        ids.swap(i, rng.gen_range(0..=i));
    }
    let inputs = AttrSet::from_indices(&ids[..ni]);
    let outputs = inputs.complement(k);

    let n_rows = rng.gen_range(1..=max_rows);
    let mut rows: Vec<Vec<u32>> = Vec::new();
    let mut seen_inputs: Vec<Vec<u32>> = Vec::new();
    for _ in 0..n_rows {
        let row: Vec<u32> = (0..k)
            .map(|i| rng.gen_range(0..schema.attr(sv_relation::AttrId(i as u32)).domain.size()))
            .collect();
        let input_part: Vec<u32> = inputs.iter().map(|a| row[a.index()]).collect();
        if !seen_inputs.contains(&input_part) {
            seen_inputs.push(input_part);
            rows.push(row);
        }
    }
    let rel = Relation::from_values(schema, rows).expect("rows fit the schema");
    StandaloneModule::new(rel, inputs, outputs).expect("dedup on inputs preserves the FD")
}

#[test]
fn trie_sweep_equals_serial_spec_on_random_modules() {
    let mut rng = StdRng::seed_from_u64(0xF2406);
    for trial in 0..8 {
        let k_max = if trial < 6 { 9 } else { 12 };
        let m = random_module(&mut rng, k_max, 48);
        let k = m.k();
        let range: u128 = m
            .outputs()
            .iter()
            .map(|a| u128::from(m.schema().attr(a).domain.size()))
            .product();
        for gamma in [2u128, 3, range.max(2), range.saturating_mul(4) + 1] {
            let spec = safety::minimal_safe_hidden_sets(&KernelOracle::new(&m), gamma).unwrap();
            let spec_words: Vec<u64> = spec.iter().map(|s| s.as_word().expect("k <= 64")).collect();
            for threads in [1usize, 2, 4] {
                for (prune, border) in [(true, true), (true, false), (false, true)] {
                    let cfg = SweepConfig {
                        threads,
                        prune,
                        border,
                    };
                    let (f, s) = minimal_sets_sweep_frontier(&m, gamma, &cfg).unwrap();
                    assert_eq!(
                        f.iter().collect::<Vec<_>>(),
                        spec_words,
                        "trial={trial} k={k} gamma={gamma} threads={threads} \
                         prune={prune} border={border}"
                    );
                    assert_eq!(s.frontier_nodes, f.node_count() as u64);
                    assert_eq!(s.visited + s.pruned, s.lattice);
                    // The AttrSet wrapper sees the identical list.
                    let (sets, _) = minimal_sets_sweep(&m, gamma, &cfg).unwrap();
                    assert_eq!(sets, spec);
                    if spec.is_empty() {
                        // Empty-antichain edge: unsatisfiable Γ yields an
                        // empty trie that covers nothing.
                        assert!(f.is_empty());
                        assert_eq!(s.frontier_nodes, 0);
                        assert!(!f.covers((1u64 << k) - 1));
                    }
                }
            }
        }
    }
}

#[test]
fn trie_sweep_antichain_matches_bruteforce_worlds() {
    let mut rng = StdRng::seed_from_u64(0xB07);
    let mut checked = 0u32;
    for _ in 0..10 {
        let m = random_module(&mut rng, 5, 12);
        if m.input_domain().len() > 4 || m.output_range().len() > 4 {
            continue; // keep the doubly-exponential enumeration tractable
        }
        let k = m.k();
        for gamma in [2u128, 3, 4] {
            let (f, _) = minimal_sets_sweep_frontier(&m, gamma, &SweepConfig::parallel(4)).unwrap();
            for mask in 0u64..(1 << k) {
                let visible = AttrSet::from_word(mask).complement(k);
                let brute = worlds::min_out_bruteforce(&m, &visible, 1 << 24).unwrap();
                // Proposition 1: a hidden set is safe iff the frontier
                // covers it — the trie's coverage query IS the safety
                // test for swept antichains.
                assert_eq!(
                    f.covers(mask),
                    brute >= gamma,
                    "k={k} gamma={gamma} mask={mask:#b} brute={brute}"
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 0, "at least one tiny module must be exercised");
}

/// Identity one-one module over `w` boolean wires (`k = 2w`): outputs
/// copy inputs, so hiding any single attribute already gives privacy 2.
fn identity_module(w: usize) -> StandaloneModule {
    let attrs: Vec<AttrDef> = (0..2 * w)
        .map(|i| AttrDef {
            name: format!("a{i}"),
            domain: Domain::new(2),
        })
        .collect();
    let schema = Schema::new(attrs);
    let inputs = AttrSet::from_indices(&(0..w as u32).collect::<Vec<_>>());
    let outputs = inputs.complement(2 * w);
    let rows: Vec<Vec<u32>> = (0..1u32 << w)
        .map(|v| {
            let ins: Vec<u32> = (0..w).map(|i| (v >> i) & 1).collect();
            let mut row = ins.clone();
            row.extend(ins);
            row
        })
        .collect();
    let rel = Relation::from_values(schema, rows).expect("rows fit the schema");
    StandaloneModule::new(rel, inputs, outputs).expect("identity preserves the FD")
}

#[test]
fn full_layer_cutoff_edge_is_exact() {
    // Γ = 2 on the identity module: every singleton is a minimal safe
    // set, so layer 2 is fully covered and the cutoff fires immediately
    // after it — the sweep visits exactly the empty mask, the k
    // singletons, and nothing above layer 2.
    let m = identity_module(3);
    let k = m.k() as u64; // 6
    let spec = safety::minimal_safe_hidden_sets(&KernelOracle::new(&m), 2).unwrap();
    assert_eq!(spec.len(), k as usize, "one minimal set per attribute");
    for threads in [1usize, 4] {
        // Border mode: the layer-2 walk finds the whole layer covered
        // (zero masks emitted) and the cutoff fires with zero coverage
        // queries issued anywhere.
        let cfg = SweepConfig::parallel(threads);
        let (f, s) = minimal_sets_sweep_frontier(&m, 2, &cfg).unwrap();
        assert_eq!(f.len(), k as usize);
        assert_eq!(s.visited, 1 + k, "empty mask + singletons only");
        assert_eq!(s.lattice, 1 << k);
        assert_eq!(s.pruned, s.lattice - s.visited);
        assert_eq!(s.frontier_queries, 0, "border walks replace covers()");
        assert_eq!(s.border_visited, 1 + k, "walks emit only uncovered masks");
        assert_eq!(s.frontier_nodes, f.node_count() as u64);

        // Exhaustive fallback: one coverage query per enumerated mask —
        // layers 0, 1 and the fully-covered layer 2 that triggers the
        // cutoff.
        let cfg = SweepConfig::parallel(threads).without_border();
        let (f, s) = minimal_sets_sweep_frontier(&m, 2, &cfg).unwrap();
        assert_eq!(f.len(), k as usize);
        assert_eq!(s.visited, 1 + k, "empty mask + singletons only");
        assert_eq!(s.pruned, s.lattice - s.visited);
        let layer2 = k * (k - 1) / 2;
        assert_eq!(s.frontier_queries, 1 + k + layer2);
        assert_eq!((s.border_visited, s.border_jumps), (0, 0));
        assert_eq!(s.frontier_nodes, f.node_count() as u64);
    }
    // The prune ablation enumerates every layer but finds the same
    // antichain with a full-lattice query count.
    let cfg = SweepConfig {
        threads: 1,
        prune: false,
        border: true, // ignored without pruning
    };
    let (f, s) = minimal_sets_sweep_frontier(&m, 2, &cfg).unwrap();
    assert_eq!(f.len(), k as usize);
    assert_eq!(s.visited, s.lattice, "ablation probes everything");
    assert_eq!(s.frontier_queries, 1 << k);
}

/// Gosper's hack: next mask of the same popcount, ascending. Must not
/// be called on `0` or a layer's last (top-packed) mask.
fn gosper(v: u64) -> u64 {
    let t = v | (v - 1);
    let nt = !t;
    (t + 1) | (((nt & nt.wrapping_neg()) - 1) >> (v.trailing_zeros() + 1))
}

/// Flat-enumerates the popcount-`p` layer of a `k`-bit lattice in
/// ascending numeric (Gosper) order. Only call where `C(k, p)` is small.
fn flat_layer(k: u32, p: u32) -> Vec<u64> {
    let count = {
        let mut c = 1u128;
        for i in 0..u128::from(p) {
            c = c * (u128::from(k) - i) / (i + 1);
        }
        u64::try_from(c).expect("caller keeps C(k, p) small")
    };
    let mut out = Vec::with_capacity(count as usize);
    let mut mask = if p == 0 { 0 } else { u64::MAX >> (64 - p) };
    for i in 0..count {
        out.push(mask);
        if i + 1 < count {
            // Never called on the layer's last mask, so no overflow
            // even at k = 64.
            mask = gosper(mask);
        }
    }
    out
}

#[test]
fn full_width_frontier_matches_flat_scan_at_k_63_and_64() {
    // Satellite: mask-width edges. k = 63 exercises the last partial
    // shift guard, k = 64 the full-word layers and top-bit masks where
    // `1u64 << k` and `u64::MAX >> (64 - r)` overflow if mishandled.
    let mut rng = StdRng::seed_from_u64(0x6364);
    for k in [63u32, 64] {
        let all = if k == 64 { u64::MAX } else { (1u64 << k) - 1 };
        for trial in 0..6 {
            // Members biased toward the edges: top-bit-heavy sparse
            // masks, near-full masks, and a few uniform draws.
            let n = rng.gen_range(1..=24);
            let mut raw: Vec<u64> = Vec::with_capacity(n);
            for _ in 0..n {
                let m = match rng.gen_range(0..4u32) {
                    0 => {
                        // sparse: 1–3 random bits, top bit often set
                        let mut m = 1u64 << (k - 1);
                        for _ in 0..rng.gen_range(0..3u32) {
                            m |= 1u64 << rng.gen_range(0..k);
                        }
                        m
                    }
                    1 => {
                        // near-full: clear 1–3 random bits
                        let mut m = all;
                        for _ in 0..rng.gen_range(1..=3u32) {
                            m &= !(1u64 << rng.gen_range(0..k));
                        }
                        m
                    }
                    2 => rng.gen_range(0..=u64::MAX) & all,
                    _ => (rng.gen_range(0..=u64::MAX) & rng.gen_range(0..=u64::MAX)) & all,
                };
                raw.push(m);
            }
            let reference = minimize(raw.clone());
            let f = Frontier::from_masks(k as usize, raw.clone());
            assert_eq!(
                f.iter().collect::<Vec<_>>(),
                reference,
                "k={k} trial={trial}: canonical iteration order"
            );

            // covers / dominated_by ≡ flat scan on adversarial queries.
            let mut queries: Vec<u64> = vec![0, all, 1u64 << (k - 1), all >> 1];
            for &m in &reference {
                queries.push(m);
                queries.push(m | (1u64 << rng.gen_range(0..k)));
                queries.push(m & !(1u64 << rng.gen_range(0..k)));
            }
            for _ in 0..256 {
                queries.push(rng.gen_range(0..=u64::MAX) & all);
            }
            for q in queries {
                assert_eq!(
                    f.covers(q),
                    flat_covers(&reference, q),
                    "k={k} covers({q:#x})"
                );
                assert_eq!(
                    f.dominated_by(q),
                    flat_dominated(&reference, q),
                    "k={k} dominated_by({q:#x})"
                );
            }

            // Border iteration ≡ flat layer scan on the enumerable
            // layers (both ends of the lattice, where the full-word
            // edge cases live).
            for p in [0u32, 1, 2, k - 2, k - 1, k] {
                let layer = flat_layer(k, p);
                let uncovered: Vec<u64> = layer.iter().copied().filter(|&m| !f.covers(m)).collect();
                let scan = f.uncovered_in_layer(p as usize);
                let mut emitted: Vec<u64> = Vec::new();
                for r in &scan.runs {
                    let mut m = r.first;
                    for j in 0..r.len {
                        emitted.push(m);
                        if j + 1 < r.len {
                            m = gosper(m);
                        }
                    }
                }
                assert_eq!(emitted, uncovered, "k={k} trial={trial} layer p={p}");
                assert_eq!(scan.masks, uncovered.len() as u64);

                // next_uncovered agrees with the flat successor at
                // arbitrary starting points.
                for _ in 0..8 {
                    let from = if layer.is_empty() {
                        0
                    } else {
                        layer[rng.gen_range(0..layer.len())]
                    };
                    let expect = uncovered.iter().copied().find(|&m| m >= from);
                    assert_eq!(
                        f.next_uncovered(from, p as usize),
                        expect,
                        "k={k} p={p} from={from:#x}"
                    );
                }
            }
        }
    }
}

/// Random rows over `schema`-shaped domains, deduplicated on `inputs`
/// against `seen` (so the FD `I → O` holds across the whole stream).
fn random_rows(
    rng: &mut StdRng,
    schema: &Schema,
    inputs: &AttrSet,
    seen: &mut Vec<Vec<u32>>,
    n: usize,
) -> Vec<Vec<u32>> {
    let k = schema.len();
    let mut rows = Vec::new();
    for _ in 0..n {
        let row: Vec<u32> = (0..k)
            .map(|i| rng.gen_range(0..schema.attr(sv_relation::AttrId(i as u32)).domain.size()))
            .collect();
        let input_part: Vec<u32> = inputs.iter().map(|a| row[a.index()]).collect();
        if !seen.contains(&input_part) {
            seen.push(input_part);
            rows.push(row);
        }
    }
    rows
}

#[test]
fn seeded_resweep_equals_fresh_sweep_after_appends() {
    // The memoized re-sweep path: a stale frontier seeds the next sweep
    // after streamed appends. Correctness must not depend on any
    // monotonicity of the data — seeds are revalidated — so we also
    // feed deliberately *wrong* seeds (a random antichain unrelated to
    // the module) and require the same answer.
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for trial in 0..6 {
        let k = rng.gen_range(4..=9usize);
        let ni = rng.gen_range(1..k);
        let attrs: Vec<AttrDef> = (0..k)
            .map(|i| AttrDef {
                name: format!("a{i}"),
                domain: Domain::new(rng.gen_range(2..=3)),
            })
            .collect();
        let schema = Schema::new(attrs);
        let mut ids: Vec<u32> = (0..k as u32).collect();
        for i in (1..ids.len()).rev() {
            ids.swap(i, rng.gen_range(0..=i));
        }
        let inputs = AttrSet::from_indices(&ids[..ni]);
        let outputs = inputs.complement(k);

        let mut seen: Vec<Vec<u32>> = Vec::new();
        let before = random_rows(&mut rng, &schema, &inputs, &mut seen, 24);
        let appended = random_rows(&mut rng, &schema, &inputs, &mut seen, 24);
        if before.is_empty() {
            continue;
        }
        let stale = StandaloneModule::new(
            Relation::from_values(schema.clone(), before.clone()).unwrap(),
            inputs.clone(),
            outputs.clone(),
        )
        .unwrap();
        let mut current = stale.clone();
        current
            .append_execution(
                &appended
                    .iter()
                    .cloned()
                    .map(sv_relation::Tuple::new)
                    .collect::<Vec<_>>(),
            )
            .unwrap();

        for gamma in [2u128, 3, 64] {
            // Seeds from the pre-append sweep (the realistic stale memo)
            // and from an unrelated random antichain (the adversarial
            // case revalidation must survive).
            let (stale_frontier, _) =
                minimal_sets_sweep_frontier(&stale, gamma, &SweepConfig::serial()).unwrap();
            let junk = Frontier::from_masks(k, random_masks(&mut rng, k as u32, 12));
            let spec =
                safety::minimal_safe_hidden_sets(&KernelOracle::new(&current), gamma).unwrap();
            let spec_words: Vec<u64> = spec.iter().map(|s| s.as_word().expect("k <= 64")).collect();
            for seeds in [&stale_frontier, &junk] {
                for threads in [1usize, 2, 4, 8] {
                    for border in [true, false] {
                        let cfg = SweepConfig {
                            threads,
                            prune: true,
                            border,
                        };
                        let (f, s) = sv_core::sweep::minimal_sets_sweep_frontier_seeded(
                            &current,
                            gamma,
                            &cfg,
                            Some(seeds),
                        )
                        .unwrap();
                        assert_eq!(
                            f.iter().collect::<Vec<_>>(),
                            spec_words,
                            "trial={trial} k={k} gamma={gamma} threads={threads} border={border}"
                        );
                        assert_eq!(
                            s.visited + s.pruned,
                            s.lattice,
                            "seed revalidation probes stay out of the ledger"
                        );
                    }
                }
            }
        }
    }
}
