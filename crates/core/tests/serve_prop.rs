//! Property suite for the **batched serving layer** (ISSUE 4):
//!
//! * `batched ≡ sequential ≡ naive reference` — [`MemoSafetyOracle::
//!   is_safe_batch`] against the trait's default sequential loop and the
//!   row-at-a-time [`NaiveOracle`], on random modules, random probe
//!   streams (duplicates, mixed Γ, trivial Γ) and interleaved streamed
//!   appends;
//! * mixed-module batches through [`WorkflowOracles::probe_batch`]
//!   agree with per-oracle sequential probing, and invalid batches
//!   (unknown module, stale epoch) reject atomically;
//! * `parallel-across-modules ≡ serial-across-modules` — workflow-level
//!   sweeps ([`WorkflowSweeper::union_of_optima`],
//!   [`WorkflowSweeper::minimal_sets_all`]) return identical results at
//!   1/2/4/8 threads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sv_core::safety::{NaiveOracle, ProbeRequest, WorkflowOracles};
use sv_core::{
    CoreError, MemoSafetyOracle, SafetyOracle, StandaloneModule, SweepConfig, WorkflowSweeper,
};
use sv_relation::{AttrDef, AttrSet, Domain, Relation, Schema, Tuple};
use sv_workflow::library::{fig1_workflow, one_one_chain};

/// Random rows over a random schema, deduplicated on a random input
/// split so the FD `I → O` holds; returns the pieces so callers can
/// build a module from a prefix and stream the rest.
fn random_module_stream(
    rng: &mut StdRng,
    k_max: usize,
    max_rows: usize,
) -> (Schema, AttrSet, AttrSet, Vec<Tuple>) {
    let k = rng.gen_range(3..=k_max);
    let ni = rng.gen_range(1..k);
    let schema = Schema::new(
        (0..k)
            .map(|i| AttrDef {
                name: format!("a{i}"),
                domain: Domain::new(rng.gen_range(2u32..=3)),
            })
            .collect::<Vec<_>>(),
    );
    let mut ids: Vec<u32> = (0..k as u32).collect();
    for i in (1..ids.len()).rev() {
        ids.swap(i, rng.gen_range(0..=i));
    }
    let inputs = AttrSet::from_indices(&ids[..ni]);
    let outputs = inputs.complement(k);
    let mut rows: Vec<Tuple> = Vec::new();
    let mut seen_inputs: Vec<Vec<u32>> = Vec::new();
    for _ in 0..rng.gen_range(1..=max_rows) {
        let row: Vec<u32> = (0..k)
            .map(|i| rng.gen_range(0..schema.attr(sv_relation::AttrId(i as u32)).domain.size()))
            .collect();
        let input_part: Vec<u32> = inputs.iter().map(|a| row[a.index()]).collect();
        if !seen_inputs.contains(&input_part) {
            seen_inputs.push(input_part);
            rows.push(Tuple::new(row));
        }
    }
    (schema, inputs, outputs, rows)
}

/// A random `(visible word, Γ)` probe stream with duplicates and the
/// trivial/unsatisfiable Γ boundaries mixed in.
fn random_probes(rng: &mut StdRng, k: usize, len: usize) -> Vec<(u64, u128)> {
    let space = 1u64 << k;
    let mut probes: Vec<(u64, u128)> = (0..len)
        .map(|_| {
            (
                rng.gen_range(0..space),
                [1u128, 2, 3, 4, 8, 1 << 20][rng.gen_range(0..6usize)],
            )
        })
        .collect();
    if !probes.is_empty() {
        let dup = probes[rng.gen_range(0..probes.len())];
        probes.push(dup);
        probes.push(dup);
    }
    probes
}

#[test]
fn oracle_batch_equals_sequential_equals_naive() {
    let mut rng = StdRng::seed_from_u64(0x5E17E);
    for trial in 0..12 {
        let (schema, inputs, outputs, rows) = random_module_stream(&mut rng, 7, 48);
        let rel = Relation::from_rows(schema, rows).expect("valid rows");
        let m = StandaloneModule::new(rel, inputs, outputs).expect("FD by construction");
        let k = m.k();
        let len = rng.gen_range(1..40);
        let probes = random_probes(&mut rng, k, len);

        let memo = MemoSafetyOracle::new(m.clone());
        let batched = memo.is_safe_batch(&probes);
        // The default trait implementation (sequential loop) over the
        // naive seed semantics is the executable specification.
        let naive = NaiveOracle::new(m.clone());
        assert_eq!(batched, naive.is_safe_batch(&probes), "trial {trial}");
        // Per-probe memoized path agrees answer for answer.
        let seq = MemoSafetyOracle::new(m);
        for (i, &(w, g)) in probes.iter().enumerate() {
            assert_eq!(
                batched[i],
                seq.is_safe(&AttrSet::from_word(w), g),
                "trial {trial} probe {i}"
            );
        }
        assert_eq!(memo.misses(), seq.misses(), "identical kernel work");
    }
}

#[test]
fn oracle_batch_stays_correct_across_streamed_appends() {
    let mut rng = StdRng::seed_from_u64(0xA99E4D);
    for trial in 0..10 {
        let (schema, inputs, outputs, rows) = random_module_stream(&mut rng, 6, 40);
        if rows.len() < 2 {
            continue;
        }
        let split = rng.gen_range(1..rows.len());
        let base = Relation::from_rows(schema.clone(), rows[..split].to_vec()).unwrap();
        let mut memo = MemoSafetyOracle::new(
            StandaloneModule::new(base, inputs.clone(), outputs.clone()).unwrap(),
        );
        let k = memo.k();
        let probes = random_probes(&mut rng, k, 24);
        // Warm the cache, stream the rest in small batches, re-batch
        // after every append; each answer must match a from-scratch
        // oracle over the accumulated rows.
        let _ = memo.is_safe_batch(&probes);
        let mut streamed = split;
        while streamed < rows.len() {
            let end = (streamed + rng.gen_range(1..=3usize)).min(rows.len());
            memo.append_execution(&rows[streamed..end]).unwrap();
            streamed = end;
            let rebuilt_rel = Relation::from_rows(schema.clone(), rows[..streamed].to_vec());
            let rebuilt = MemoSafetyOracle::new(
                StandaloneModule::new(rebuilt_rel.unwrap(), inputs.clone(), outputs.clone())
                    .unwrap(),
            );
            assert_eq!(
                memo.is_safe_batch(&probes),
                rebuilt.is_safe_batch(&probes),
                "trial {trial} after {streamed} rows"
            );
        }
    }
}

#[test]
fn mixed_module_batches_match_sequential_probing() {
    let mut rng = StdRng::seed_from_u64(0xBA7C4);
    let w = fig1_workflow();
    let oracles = WorkflowOracles::for_workflow(&w, 1 << 20).unwrap();
    let ids = oracles.module_ids();
    // A long interleaved stream over all modules.
    let requests: Vec<ProbeRequest> = (0..120)
        .map(|_| {
            let id = ids[rng.gen_range(0..ids.len())];
            ProbeRequest::new(
                id,
                AttrSet::from_word(rng.gen_range(0u64..32)),
                [1u128, 2, 4, 8][rng.gen_range(0..4usize)],
            )
        })
        .collect();
    let outcomes = oracles.probe_batch(&requests).unwrap();
    let fresh = WorkflowOracles::for_workflow(&w, 1 << 20).unwrap();
    for (r, o) in requests.iter().zip(&outcomes) {
        let seq = fresh.oracle(r.module).unwrap().is_safe(&r.visible, r.gamma);
        assert_eq!(o.safe, seq, "{r:?}");
    }
    // The batched router did no more kernel work than sequential.
    assert!(oracles.total_misses() <= fresh.total_misses());
}

#[test]
fn streaming_batches_reject_stale_epochs_atomically() {
    let w = fig1_workflow();
    let mut oracles = WorkflowOracles::for_workflow_streaming(&w).unwrap();
    let ids = oracles.module_ids();
    let row = w.run(&[0, 0]).unwrap();
    oracles.ingest_execution(&row).unwrap();
    // Clients conditioned on epoch 1 are served…
    let current: Vec<ProbeRequest> = ids
        .iter()
        .map(|&id| ProbeRequest::new(id, AttrSet::new(), 2).at_epoch(1))
        .collect();
    let outcomes = oracles.probe_batch(&current).unwrap();
    assert!(outcomes.iter().all(|o| o.epoch == 1));
    let calls = oracles.total_calls();
    // …but after more provenance arrives, the same conditioned batch is
    // rejected outright, touching no oracle.
    let row = w.run(&[1, 1]).unwrap();
    oracles.ingest_execution(&row).unwrap();
    let err = oracles.probe_batch(&current).unwrap_err();
    assert!(matches!(
        err,
        CoreError::StaleEpoch {
            expected: 1,
            actual: 2,
            ..
        }
    ));
    assert_eq!(oracles.total_calls(), calls, "no memo state touched");
    // Re-conditioning on the new epoch serves again.
    let refreshed: Vec<ProbeRequest> = current.iter().map(|r| r.clone().at_epoch(2)).collect();
    assert!(oracles.probe_batch(&refreshed).is_ok());
}

#[test]
fn cross_module_parallel_sweeps_equal_serial_at_mixed_thread_counts() {
    for workflow in [one_one_chain(3, 3), fig1_workflow()] {
        let gamma = 2u128;
        let costs = vec![1u64; workflow.schema().len()];
        // Serial-across-modules reference.
        let serial =
            WorkflowSweeper::for_workflow(&workflow, 1 << 20, SweepConfig::serial()).unwrap();
        let serial_costs = serial.localize_costs(&costs);
        let (serial_hidden, serial_cost, serial_stats) =
            serial.union_of_optima(&serial_costs, gamma).unwrap();
        let gammas = vec![gamma; serial.module_ids().len()];
        let (serial_sets, _) = serial.minimal_sets_all(&gammas).unwrap();

        for threads in [1usize, 2, 4, 8] {
            let sweeper =
                WorkflowSweeper::for_workflow(&workflow, 1 << 20, SweepConfig::parallel(threads))
                    .unwrap();
            let wc = sweeper.localize_costs(&costs);
            let (hidden, cost, stats) = sweeper.union_of_optima(&wc, gamma).unwrap();
            assert_eq!(
                (hidden, cost),
                (serial_hidden.clone(), serial_cost),
                "threads={threads}"
            );
            // Counters are deterministic too: the same masks are swept
            // whatever the module/shard scheduling.
            assert_eq!(stats.lattice, serial_stats.lattice, "threads={threads}");
            let (sets, s) = sweeper.minimal_sets_all(&gammas).unwrap();
            assert_eq!(sets, serial_sets, "threads={threads}");
            assert_eq!(s.visited + s.pruned, s.lattice);
            // A repeat answers from the epoch memo with zero new sweeps.
            let before = sweeper.sweeps_performed();
            let _ = sweeper.minimal_sets_all(&gammas).unwrap();
            let _ = sweeper.union_of_optima(&wc, gamma).unwrap();
            assert_eq!(sweeper.sweeps_performed(), before, "threads={threads}");
        }
    }
}
