//! Property suite for the **concurrent-read serving tier** (ISSUE 5):
//!
//! * `concurrent ≡ sequential ≡ naive` — N threads (up to 8) firing
//!   mixed-module [`WorkflowOracles::probe_batch`] streams at **one
//!   shared instance**, interleaved with `ingest_execution` appends
//!   between serving phases, must answer exactly like a fresh
//!   sequential reference instance fed the same appends — and like the
//!   row-at-a-time naive oracle;
//! * concurrent [`MemoSafetyOracle`] probes (mixed `is_safe`,
//!   `is_safe_batch`, and pinned-scratch `is_safe_hidden_word_with`
//!   forms) from many threads agree with the naive reference, across
//!   appends;
//! * [`ProbeRequest`] edge cases: the empty batch, duplicate
//!   `(module, word)` requests inside one batch, and `StaleEpoch` for a
//!   client whose epoch-conditioned batch raced a concurrent
//!   `ingest_execution`.
//!
//! The threading model under test: probes take `&self` and any number
//! of reader threads share one instance; appends take `&mut self`, so
//! the borrow checker serializes them against all probes — the suite
//! alternates concurrent serving phases with append phases, which is
//! exactly the interleaving a served deployment exhibits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sv_core::safety::{NaiveOracle, ProbeRequest, WorkflowOracles};
use sv_core::{CoreError, MemoSafetyOracle, SafetyOracle, StandaloneModule};
use sv_relation::{AttrDef, AttrSet, Domain, Relation, Schema, Tuple};
use sv_workflow::library::{fig1_workflow, one_one_chain};

/// Random rows over a random schema, deduplicated on a random input
/// split so the FD `I → O` holds (same generator as `serve_prop`).
fn random_module_stream(
    rng: &mut StdRng,
    k_max: usize,
    max_rows: usize,
) -> (Schema, AttrSet, AttrSet, Vec<Tuple>) {
    let k = rng.gen_range(3..=k_max);
    let ni = rng.gen_range(1..k);
    let schema = Schema::new(
        (0..k)
            .map(|i| AttrDef {
                name: format!("a{i}"),
                domain: Domain::new(rng.gen_range(2u32..=3)),
            })
            .collect::<Vec<_>>(),
    );
    let mut ids: Vec<u32> = (0..k as u32).collect();
    for i in (1..ids.len()).rev() {
        ids.swap(i, rng.gen_range(0..=i));
    }
    let inputs = AttrSet::from_indices(&ids[..ni]);
    let outputs = inputs.complement(k);
    let mut rows: Vec<Tuple> = Vec::new();
    let mut seen_inputs: Vec<Vec<u32>> = Vec::new();
    for _ in 0..rng.gen_range(2..=max_rows) {
        let row: Vec<u32> = (0..k)
            .map(|i| rng.gen_range(0..schema.attr(sv_relation::AttrId(i as u32)).domain.size()))
            .collect();
        let input_part: Vec<u32> = inputs.iter().map(|a| row[a.index()]).collect();
        if !seen_inputs.contains(&input_part) {
            seen_inputs.push(input_part);
            rows.push(Tuple::new(row));
        }
    }
    (schema, inputs, outputs, rows)
}

#[test]
fn concurrent_memo_probes_match_naive_across_appends() {
    let mut rng = StdRng::seed_from_u64(0xC0C0);
    for trial in 0..8 {
        let (schema, inputs, outputs, rows) = random_module_stream(&mut rng, 7, 40);
        let split = 1 + rows.len() / 2;
        let base = Relation::from_rows(schema.clone(), rows[..split].to_vec()).unwrap();
        let mut memo = MemoSafetyOracle::new(
            StandaloneModule::new(base, inputs.clone(), outputs.clone()).unwrap(),
        );
        let k = memo.k();
        let space = 1u64 << k;
        // Per-thread probe streams with heavy cross-thread overlap, so
        // threads race on the same cache lines and shards.
        let streams: Vec<Vec<(u64, u128)>> = (0..8)
            .map(|_| {
                (0..40)
                    .map(|_| {
                        (
                            rng.gen_range(0..space),
                            [1u128, 2, 3, 4, 8][rng.gen_range(0..5usize)],
                        )
                    })
                    .collect()
            })
            .collect();

        // Phase loop: serve concurrently, then append, then serve again.
        let mut upto = split;
        loop {
            for &threads in &[2usize, 4, 8] {
                let answers: Vec<Vec<bool>> = std::thread::scope(|s| {
                    let memo = &memo;
                    let handles: Vec<_> = streams[..threads]
                        .iter()
                        .enumerate()
                        .map(|(t, stream)| {
                            s.spawn(move || {
                                let mut scratch: Vec<u64> = Vec::new();
                                stream
                                    .iter()
                                    .enumerate()
                                    .map(|(i, &(w, gamma))| match (t + i) % 3 {
                                        // Mix every probe form across threads.
                                        0 => memo.is_safe(&AttrSet::from_word(w), gamma),
                                        1 => memo.is_safe_batch(&[(w, gamma)])[0],
                                        _ => {
                                            let hidden = !w & (space - 1);
                                            memo.is_safe_hidden_word_with(
                                                hidden,
                                                gamma,
                                                &mut scratch,
                                            )
                                        }
                                    })
                                    .collect()
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
                // Naive reference over the module's current rows.
                let naive = NaiveOracle::new(
                    StandaloneModule::new(
                        memo.module().relation().clone(),
                        inputs.clone(),
                        outputs.clone(),
                    )
                    .unwrap(),
                );
                for (t, stream) in streams[..threads].iter().enumerate() {
                    for (i, &(w, gamma)) in stream.iter().enumerate() {
                        assert_eq!(
                            answers[t][i],
                            naive.is_safe(&AttrSet::from_word(w), gamma),
                            "trial {trial} threads {threads} thread {t} probe {i}"
                        );
                    }
                }
            }
            if upto >= rows.len() {
                break;
            }
            let end = (upto + 2).min(rows.len());
            memo.append_execution(&rows[upto..end]).unwrap();
            upto = end;
        }
    }
}

#[test]
fn concurrent_mixed_module_batches_match_sequential_reference() {
    let mut rng = StdRng::seed_from_u64(0x5EED5);
    for workflow in [fig1_workflow(), one_one_chain(3, 3)] {
        // One shared streaming instance (the serving deployment) and a
        // sequential reference instance fed exactly the same appends.
        let mut shared = WorkflowOracles::for_workflow_streaming(&workflow).unwrap();
        let mut reference = WorkflowOracles::for_workflow_streaming(&workflow).unwrap();
        let ids = shared.module_ids();

        // All provenance rows the workflow can produce (boolean initial
        // inputs in these library workflows), in a shuffled ingest order.
        let mut executions: Vec<Tuple> = Vec::new();
        let n_in = workflow.initial_inputs().len();
        for x in 0..(1u32 << n_in) {
            let vals: Vec<u32> = (0..n_in).map(|i| (x >> i) & 1).collect();
            executions.push(workflow.run(&vals).unwrap());
        }
        for i in (1..executions.len()).rev() {
            executions.swap(i, rng.gen_range(0..=i));
        }

        // Alternate: ingest a row into both instances, then serve a
        // concurrent mixed-module phase at 1/2/4/8 threads.
        for (round, row) in executions.iter().enumerate() {
            shared.ingest_execution(row).unwrap();
            reference.ingest_execution(row).unwrap();
            // Per-thread request streams, interleaving modules.
            let streams: Vec<Vec<ProbeRequest>> = (0..8)
                .map(|_| {
                    (0..24)
                        .map(|_| {
                            ProbeRequest::new(
                                ids[rng.gen_range(0..ids.len())],
                                AttrSet::from_word(rng.gen_range(0u64..64)),
                                [1u128, 2, 4, 8][rng.gen_range(0..4usize)],
                            )
                        })
                        .collect()
                })
                .collect();
            for &threads in &[1usize, 2, 4, 8] {
                let outcomes: Vec<Vec<_>> = std::thread::scope(|s| {
                    let shared = &shared;
                    let handles: Vec<_> = streams[..threads]
                        .iter()
                        .map(|stream| {
                            s.spawn(move || {
                                // Fire the stream as two batches, so the
                                // per-phase batch engine runs under
                                // genuine cross-thread interleaving.
                                let mid = stream.len() / 2;
                                let mut out = shared.probe_batch(&stream[..mid]).unwrap();
                                out.extend(shared.probe_batch(&stream[mid..]).unwrap());
                                out
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
                for (t, stream) in streams[..threads].iter().enumerate() {
                    for (i, r) in stream.iter().enumerate() {
                        let seq = reference
                            .oracle(r.module)
                            .unwrap()
                            .is_safe(&r.visible, r.gamma);
                        assert_eq!(
                            outcomes[t][i].safe, seq,
                            "round {round} threads {threads} thread {t} request {i}: {r:?}"
                        );
                        assert_eq!(outcomes[t][i].module, r.module);
                    }
                }
            }
        }
        // Concurrency never changed the kernel-work accounting class:
        // the shared instance answered every distinct question at most
        // once per epoch, like the sequential reference.
        assert!(shared.total_misses() <= reference.total_calls());
    }
}

#[test]
fn empty_probe_batch_returns_empty_without_touching_state() {
    let w = fig1_workflow();
    let oracles = WorkflowOracles::for_workflow(&w, 1 << 20).unwrap();
    let outcomes = oracles.probe_batch(&[]).unwrap();
    assert!(outcomes.is_empty());
    assert_eq!(oracles.total_calls(), 0, "no oracle touched");
    assert_eq!(oracles.total_misses(), 0);
    // Same contract at the single-oracle layer, for both the memo
    // override and the trait's default loop.
    let m = StandaloneModule::from_workflow_module(&w, sv_workflow::ModuleId(0), 1 << 20).unwrap();
    let memo = MemoSafetyOracle::new(m.clone());
    assert!(memo.is_safe_batch(&[]).is_empty());
    assert_eq!((memo.calls(), memo.misses()), (0, 0));
    let naive = NaiveOracle::new(m);
    assert!(naive.is_safe_batch(&[]).is_empty());
    assert_eq!(naive.calls(), 0);
}

#[test]
fn duplicate_module_word_requests_share_one_kernel_evaluation() {
    let w = fig1_workflow();
    let oracles = WorkflowOracles::for_workflow(&w, 1 << 20).unwrap();
    let id = oracles.module_ids()[0];
    let v = AttrSet::from_indices(&[0, 2, 4]);
    // The same (module, word) five times — different Γ, same level.
    let batch: Vec<ProbeRequest> = [2u128, 4, 4, 8, 4]
        .into_iter()
        .map(|g| ProbeRequest::new(id, v.clone(), g))
        .collect();
    let outcomes = oracles.probe_batch(&batch).unwrap();
    assert_eq!(outcomes.len(), 5);
    // Example 3: level is exactly 4.
    assert_eq!(
        outcomes.iter().map(|o| o.safe).collect::<Vec<_>>(),
        vec![true, true, true, false, true]
    );
    assert_eq!(
        oracles.total_misses(),
        1,
        "five duplicate requests cost one kernel evaluation"
    );
    // A repeat of the whole batch is pure cache hits.
    let again = oracles.probe_batch(&batch).unwrap();
    assert_eq!(again, outcomes);
    assert_eq!(oracles.total_misses(), 1);
}

#[test]
fn stale_epoch_raised_after_concurrent_ingest() {
    let w = fig1_workflow();
    let mut oracles = WorkflowOracles::for_workflow_streaming(&w).unwrap();
    let ids = oracles.module_ids();
    oracles.ingest_execution(&w.run(&[0, 0]).unwrap()).unwrap();

    // A client reads the current epoch and conditions its batch on it…
    let seen_epoch = oracles.oracle(ids[0]).unwrap().relation_epoch();
    let conditioned: Vec<ProbeRequest> = ids
        .iter()
        .map(|&id| ProbeRequest::new(id, AttrSet::new(), 2).at_epoch(seen_epoch))
        .collect();
    assert!(oracles.probe_batch(&conditioned).is_ok());

    // …but another writer ingests between the client's derivation and
    // its next probe: the conditioned batch must be rejected atomically.
    oracles.ingest_execution(&w.run(&[1, 1]).unwrap()).unwrap();
    let calls = oracles.total_calls();
    let err = oracles.probe_batch(&conditioned).unwrap_err();
    assert!(matches!(
        err,
        CoreError::StaleEpoch {
            expected: 1,
            actual: 2,
            ..
        }
    ));
    assert_eq!(oracles.total_calls(), calls, "rejected before any memo");
    // Unconditioned requests (and requests re-conditioned on the new
    // epoch) are served — from many threads at once.
    let refreshed: Vec<ProbeRequest> = conditioned.iter().map(|r| r.clone().at_epoch(2)).collect();
    std::thread::scope(|s| {
        for _ in 0..4 {
            let oracles = &oracles;
            let refreshed = &refreshed;
            s.spawn(move || {
                assert!(oracles.probe_batch(refreshed).is_ok());
            });
        }
    });
}
