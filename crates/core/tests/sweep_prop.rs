//! Seeded-PRNG property suite for the parallel lattice sweep:
//! **parallel sweep ≡ serial sweep ≡ serial oracle reference ≡
//! brute-force possible worlds** across random modules (k ≤ 12, mixed
//! domain sizes, mixed thread counts), including the "no safe set
//! exists" and tie-cost cases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sv_core::safety::{self, KernelOracle};
use sv_core::sweep::{min_cost_sweep, minimal_sets_sweep, SweepConfig};
use sv_core::{worlds, StandaloneModule};
use sv_relation::{AttrDef, AttrSet, Domain, Relation, Schema};

/// Random standalone module: `k ≤ k_max` attributes with domain sizes
/// 2–3, a random input/output split, and up to `max_rows` random rows
/// deduplicated on the inputs (so the FD `I → O` holds by
/// construction).
fn random_module(rng: &mut StdRng, k_max: usize, max_rows: usize) -> StandaloneModule {
    let k = rng.gen_range(3..=k_max);
    let ni = rng.gen_range(1..k);
    let attrs: Vec<AttrDef> = (0..k)
        .map(|i| AttrDef {
            name: format!("a{i}"),
            domain: Domain::new(rng.gen_range(2..=3)),
        })
        .collect();
    let schema = Schema::new(attrs);
    // Random input positions (any subset of size ni).
    let mut ids: Vec<u32> = (0..k as u32).collect();
    for i in (1..ids.len()).rev() {
        ids.swap(i, rng.gen_range(0..=i));
    }
    let inputs = AttrSet::from_indices(&ids[..ni]);
    let outputs = inputs.complement(k);

    let n_rows = rng.gen_range(1..=max_rows);
    let mut rows: Vec<Vec<u32>> = Vec::new();
    let mut seen_inputs: Vec<Vec<u32>> = Vec::new();
    for _ in 0..n_rows {
        let row: Vec<u32> = (0..k)
            .map(|i| rng.gen_range(0..schema.attr(sv_relation::AttrId(i as u32)).domain.size()))
            .collect();
        let input_part: Vec<u32> = inputs.iter().map(|a| row[a.index()]).collect();
        if !seen_inputs.contains(&input_part) {
            seen_inputs.push(input_part);
            rows.push(row);
        }
    }
    let rel = Relation::from_values(schema, rows).expect("rows fit the schema");
    StandaloneModule::new(rel, inputs, outputs).expect("dedup on inputs preserves the FD")
}

/// Gammas worth probing: trivial, small, the module's full range (often
/// a tie-heavy boundary), and an unsatisfiable value.
fn gammas_for(m: &StandaloneModule) -> Vec<u128> {
    let range: u128 = m
        .outputs()
        .iter()
        .map(|a| u128::from(m.schema().attr(a).domain.size()))
        .product();
    vec![2, 3, range.max(2), range.saturating_mul(4) + 1]
}

#[test]
fn parallel_sweep_equals_serial_reference_on_random_modules() {
    let mut rng = StdRng::seed_from_u64(0xE16);
    // Mostly small lattices (fast even in debug), a couple of k = 12
    // ones for the full-width shard/unranking paths.
    for trial in 0..10 {
        let k_max = if trial < 8 { 9 } else { 12 };
        let m = random_module(&mut rng, k_max, 64);
        let k = m.k();
        // Random costs with deliberate ties (range includes 0).
        let costs: Vec<u64> = (0..k).map(|_| rng.gen_range(0..=3)).collect();
        for gamma in gammas_for(&m) {
            let serial_min =
                safety::min_cost_safe_hidden(&KernelOracle::new(&m), &costs, gamma).unwrap();
            let serial_sets =
                safety::minimal_safe_hidden_sets(&KernelOracle::new(&m), gamma).unwrap();
            for threads in [1usize, 3, 8] {
                for prune in [true, false] {
                    for border in [true, false] {
                        let cfg = SweepConfig {
                            threads,
                            prune,
                            border,
                        };
                        let ctx = format!(
                            "trial={trial} k={k} gamma={gamma} threads={threads} \
                             prune={prune} border={border}"
                        );
                        let (found, s1) = min_cost_sweep(&m, &costs, gamma, &cfg).unwrap();
                        assert_eq!(found, serial_min, "min_cost {ctx}");
                        assert_eq!(s1.visited + s1.pruned, s1.lattice);
                        let (sets, s2) = minimal_sets_sweep(&m, gamma, &cfg).unwrap();
                        assert_eq!(sets, serial_sets, "minimal {ctx}");
                        assert_eq!(s2.visited + s2.pruned, s2.lattice);
                        if !prune {
                            assert_eq!(s2.visited, s2.lattice, "ablation probes everything");
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn no_safe_set_cases_are_consistent_everywhere() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..4 {
        let m = random_module(&mut rng, 9, 32);
        let gamma = gammas_for(&m).pop().unwrap(); // the unsatisfiable one
        assert!(m
            .min_cost_safe_hidden(&vec![1; m.k()], gamma)
            .unwrap()
            .is_none());
        for threads in [1usize, 8] {
            let (found, stats) =
                min_cost_sweep(&m, &vec![1; m.k()], gamma, &SweepConfig::parallel(threads))
                    .unwrap();
            assert!(found.is_none());
            assert_eq!(stats.visited, stats.lattice, "no bound ⇒ nothing pruned");
            let (sets, _) = minimal_sets_sweep(&m, gamma, &SweepConfig::parallel(threads)).unwrap();
            assert!(sets.is_empty());
        }
    }
}

#[test]
fn tie_costs_resolve_deterministically_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..4 {
        let m = random_module(&mut rng, 9, 48);
        // All-equal and all-zero costs: every popcount class is one big
        // tie; the sweep must still return the serial answer — the
        // lexicographically smallest safe mask of minimum cost.
        for costs in [vec![1u64; m.k()], vec![0u64; m.k()]] {
            for gamma in gammas_for(&m) {
                let serial =
                    safety::min_cost_safe_hidden(&KernelOracle::new(&m), &costs, gamma).unwrap();
                for _ in 0..3 {
                    let (found, _) =
                        min_cost_sweep(&m, &costs, gamma, &SweepConfig::parallel(8)).unwrap();
                    assert_eq!(found, serial, "tie case must be deterministic");
                }
            }
        }
    }
}

#[test]
fn sweep_antichain_matches_bruteforce_worlds_on_tiny_modules() {
    let mut rng = StdRng::seed_from_u64(99);
    let mut checked = 0u32;
    for _ in 0..12 {
        let m = random_module(&mut rng, 5, 12);
        // Keep the doubly-exponential world enumeration tractable:
        // (range + 1)^dom candidate functions per visible set.
        if m.input_domain().len() > 4 || m.output_range().len() > 4 {
            continue;
        }
        let k = m.k();
        let gammas = [2u128, 3, 4];
        let antichains: Vec<Vec<AttrSet>> = gammas
            .iter()
            .map(|&g| {
                minimal_sets_sweep(&m, g, &SweepConfig::parallel(4))
                    .unwrap()
                    .0
            })
            .collect();
        for mask in 0u64..(1 << k) {
            let hidden = AttrSet::from_word(mask);
            let visible = hidden.complement(k);
            // One world enumeration per mask, compared against every Γ.
            let brute = worlds::min_out_bruteforce(&m, &visible, 1 << 24).unwrap();
            for (antichain, &gamma) in antichains.iter().zip(&gammas) {
                let generated = antichain.iter().any(|s| s.is_subset(&hidden));
                assert_eq!(
                    generated,
                    brute >= gamma,
                    "k={k} gamma={gamma} mask={mask:#b} brute={brute}"
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 0, "at least one tiny module must be exercised");
}
