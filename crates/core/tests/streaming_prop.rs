//! Property suite for **streaming provenance** at the oracle and sweep
//! layers: executions of random modules arrive in random batches, and
//! after every batch a persistent epoch-aware [`MemoSafetyOracle`] (and
//! the parallel sweeps over the streamed module) must agree with
//! oracles and sweeps built from scratch over the same observed
//! provenance — and with the row-at-a-time naive reference.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sv_core::safety::{self, KernelOracle, NaiveOracle, SafetyOracle};
use sv_core::sweep::{min_cost_sweep, minimal_sets_sweep, SweepConfig};
use sv_core::{CoreError, MemoSafetyOracle, StandaloneModule};
use sv_relation::{AttrDef, AttrSet, Domain, Relation, Schema, Tuple};

/// A random module function over 2 inputs / 2 outputs with mixed domain
/// sizes, returned as the full list of execution rows.
fn random_executions(rng: &mut StdRng) -> (Schema, AttrSet, AttrSet, Vec<Tuple>) {
    let sizes: Vec<u32> = (0..4).map(|_| rng.gen_range(2u32..4)).collect();
    let schema = Schema::new(
        sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| AttrDef {
                name: format!("a{i}"),
                domain: Domain::new(s),
            })
            .collect(),
    );
    let inputs = AttrSet::from_indices(&[0, 1]);
    let outputs = AttrSet::from_indices(&[2, 3]);
    let mut rows = Vec::new();
    for x0 in 0..sizes[0] {
        for x1 in 0..sizes[1] {
            // Output = deterministic per-module random function of x.
            let o0 = rng.gen_range(0u32..sizes[2]);
            let o1 = rng.gen_range(0u32..sizes[3]);
            rows.push(Tuple::new(vec![x0, x1, o0, o1]));
        }
    }
    (schema, inputs, outputs, rows)
}

#[test]
fn streamed_oracle_matches_fresh_oracles_after_every_batch() {
    let mut rng = StdRng::seed_from_u64(0x057A_EA11);
    for case in 0..12 {
        let (schema, inputs, outputs, mut rows) = random_executions(&mut rng);
        rows.shuffle(&mut rng);
        let mut streamed = StandaloneModule::new(
            Relation::empty(schema.clone()),
            inputs.clone(),
            outputs.clone(),
        )
        .unwrap();
        let mut memo = MemoSafetyOracle::new(streamed.clone());
        let mut step = 0usize;
        while !rows.is_empty() {
            let take = rng.gen_range(1usize..4).min(rows.len());
            let mut batch: Vec<Tuple> = rows.drain(..take).collect();
            // Sprinkle duplicates of already-streamed executions.
            if !streamed.relation().is_empty() && rng.gen_range(0u32..2) == 0 {
                let r = streamed.relation().rows();
                batch.push(r[rng.gen_range(0usize..r.len())].clone());
            }
            streamed.append_execution(&batch).unwrap();
            memo.append_execution(&batch).unwrap();
            assert_eq!(memo.relation_epoch(), streamed.epoch());

            // Ground truth: oracles over a module built from scratch on
            // the same observed provenance.
            let rebuilt =
                StandaloneModule::new(streamed.relation().clone(), inputs.clone(), outputs.clone())
                    .unwrap();
            let naive = NaiveOracle::new(rebuilt.clone());
            let kernel = KernelOracle::new(&rebuilt);
            for mask in 0u64..(1 << 4) {
                let v = AttrSet::from_word(mask);
                // Mix probe styles so the memo's shortcut, revalidation
                // and exact paths all fire across the schedule.
                for gamma in [2u128, 3, 5] {
                    assert_eq!(
                        memo.is_safe(&v, gamma),
                        rebuilt.is_safe(&v, gamma),
                        "case {case} step {step} mask {mask:#b} gamma {gamma}"
                    );
                }
                let level = memo.privacy_level(&v);
                assert_eq!(level, kernel.privacy_level(&v), "case {case} step {step}");
                assert_eq!(level, naive.privacy_level(&v), "case {case} step {step}");
            }
            step += 1;
        }
    }
}

#[test]
fn streamed_sweeps_match_sweeps_over_rebuilt_modules() {
    let mut rng = StdRng::seed_from_u64(0xD0_5EEB);
    for _case in 0..6 {
        let (schema, inputs, outputs, mut rows) = random_executions(&mut rng);
        rows.shuffle(&mut rng);
        let mut streamed = StandaloneModule::new(
            Relation::empty(schema.clone()),
            inputs.clone(),
            outputs.clone(),
        )
        .unwrap();
        let costs = vec![3u64, 1, 4, 1];
        while !rows.is_empty() {
            let take = rng.gen_range(1usize..5).min(rows.len());
            let batch: Vec<Tuple> = rows.drain(..take).collect();
            streamed.append_execution(&batch).unwrap();
            let rebuilt =
                StandaloneModule::new(streamed.relation().clone(), inputs.clone(), outputs.clone())
                    .unwrap();
            for gamma in [2u128, 4] {
                for threads in [1usize, 3] {
                    let cfg = SweepConfig::parallel(threads);
                    assert_eq!(
                        min_cost_sweep(&streamed, &costs, gamma, &cfg).unwrap().0,
                        min_cost_sweep(&rebuilt, &costs, gamma, &cfg).unwrap().0,
                    );
                    assert_eq!(
                        minimal_sets_sweep(&streamed, gamma, &cfg).unwrap().0,
                        minimal_sets_sweep(&rebuilt, gamma, &cfg).unwrap().0,
                    );
                }
                // Serial reference closes the triangle.
                assert_eq!(
                    minimal_sets_sweep(&streamed, gamma, &SweepConfig::serial())
                        .unwrap()
                        .0,
                    safety::minimal_safe_hidden_sets(&KernelOracle::new(&rebuilt), gamma).unwrap(),
                );
            }
        }
    }
}

#[test]
fn fd_violations_and_bad_rows_are_rejected_atomically() {
    let mut rng = StdRng::seed_from_u64(0xA70);
    let (schema, inputs, outputs, rows) = random_executions(&mut rng);
    let mut m = StandaloneModule::new(Relation::empty(schema), inputs, outputs).unwrap();
    m.append_execution(&rows[..2]).unwrap();
    let snapshot = m.relation().clone();
    let epoch = m.epoch();

    // Contradicting output for a recorded input. `(v + 1) % 2` always
    // differs from `v` and stays inside every ≥ 2-sized domain.
    let mut bad = rows[0].clone();
    let flip = bad.get(sv_relation::AttrId(2));
    bad.set(sv_relation::AttrId(2), (flip + 1) % 2);
    let err = m.append_execution(&[bad]).unwrap_err();
    assert_eq!(err, CoreError::NotAFunction.at_row(0));

    // In-batch contradiction: two fresh executions of the same input
    // with different outputs.
    let fresh_in = rows[3].clone();
    let mut fresh_alt = fresh_in.clone();
    let flip = fresh_alt.get(sv_relation::AttrId(3));
    fresh_alt.set(sv_relation::AttrId(3), (flip + 1) % 2);
    let err = m.append_execution(&[fresh_in, fresh_alt]).unwrap_err();
    // The second row is the one that contradicts the first: the error
    // carries its in-batch position.
    assert_eq!(err, CoreError::NotAFunction.at_row(1));

    // Out-of-domain value.
    let err = m
        .append_execution(&[Tuple::new(vec![0, 0, 99, 0])])
        .unwrap_err();
    assert!(
        matches!(err, CoreError::RowRejected { index: 0, ref source } if matches!(**source, CoreError::Relation(_)))
    );

    assert_eq!(m.relation(), &snapshot, "nothing landed");
    assert_eq!(m.epoch(), epoch);
}
