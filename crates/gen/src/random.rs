//! Seeded random instances and workflows for parameter sweeps.
//!
//! All generators take a caller-supplied RNG so sweeps are exactly
//! reproducible; the benchmarks fix seeds per experiment.

use rand::seq::SliceRandom;
use rand::Rng;
use sv_optimize::{
    CardModule, CardinalityInstance, GeneralInstance, PublicSpec, SetInstance, SetModule,
};
use sv_relation::AttrSet;
use sv_workflow::{ModuleFn, Visibility, Workflow, WorkflowBuilder};

/// Parameters for random Secure-View instances.
#[derive(Clone, Debug)]
pub struct InstanceParams {
    /// Number of private modules.
    pub n_modules: usize,
    /// Attributes per module (inputs + outputs).
    pub attrs_per_module: usize,
    /// Data-sharing degree target: each module reuses this many
    /// attributes of earlier modules as inputs.
    pub shared_inputs: usize,
    /// Maximum requirement-list length `ℓ_i`.
    pub max_list: usize,
    /// Maximum attribute cost (costs drawn uniformly from `1..=max`).
    pub max_cost: u64,
}

impl Default for InstanceParams {
    fn default() -> Self {
        Self {
            n_modules: 5,
            attrs_per_module: 4,
            shared_inputs: 1,
            max_list: 3,
            max_cost: 5,
        }
    }
}

/// Random cardinality-constraints instance.
///
/// Attribute ids are allocated per module (its private block) plus
/// `shared_inputs` attributes borrowed from earlier modules' blocks,
/// giving a controllable data-sharing degree.
pub fn random_cardinality<R: Rng>(rng: &mut R, p: &InstanceParams) -> CardinalityInstance {
    let mut modules = Vec::with_capacity(p.n_modules);
    let mut all_attrs: Vec<u32> = Vec::new();
    let mut next = 0u32;
    for _ in 0..p.n_modules {
        let own: Vec<u32> = (0..p.attrs_per_module)
            .map(|_| {
                let a = next;
                next += 1;
                a
            })
            .collect();
        let n_in = rng.gen_range(1..p.attrs_per_module.max(2));
        let mut inputs: Vec<u32> = own[..n_in].to_vec();
        let outputs: Vec<u32> = own[n_in..].to_vec();
        for _ in 0..p.shared_inputs {
            if let Some(&b) = all_attrs.choose(rng) {
                if !inputs.contains(&b) {
                    inputs.push(b);
                }
            }
        }
        all_attrs.extend(&own);
        let li = rng.gen_range(1..=p.max_list);
        let mut list: Vec<(usize, usize)> = (0..li)
            .map(|_| {
                (
                    rng.gen_range(0..=inputs.len()),
                    rng.gen_range(0..=outputs.len()),
                )
            })
            .filter(|&(a, b)| a + b > 0)
            .collect();
        if list.is_empty() {
            list.push((1.min(inputs.len()), usize::from(inputs.is_empty())));
        }
        modules.push(CardModule {
            inputs,
            outputs,
            list,
        });
    }
    let n_attrs = next as usize;
    let costs = (0..n_attrs)
        .map(|_| rng.gen_range(1..=p.max_cost))
        .collect();
    CardinalityInstance {
        n_attrs,
        costs,
        modules,
    }
}

/// Random set-constraints instance (entries drawn from each module's
/// own attribute block plus shared attributes).
pub fn random_set<R: Rng>(rng: &mut R, p: &InstanceParams) -> SetInstance {
    let card = random_cardinality(rng, p);
    let modules = card
        .modules
        .iter()
        .map(|m| {
            let pool: Vec<u32> = m.inputs.iter().chain(m.outputs.iter()).copied().collect();
            let li = rng.gen_range(1..=p.max_list);
            let list = (0..li)
                .map(|_| {
                    let sz = rng.gen_range(1..=pool.len().min(3));
                    let mut pick = pool.clone();
                    pick.shuffle(rng);
                    AttrSet::from_indices(&pick[..sz])
                })
                .collect();
            SetModule { list }
        })
        .collect();
    SetInstance {
        n_attrs: card.n_attrs,
        costs: card.costs,
        modules,
    }
}

/// Random general instance: a random set instance plus random public
/// modules with footprints over the attribute space.
pub fn random_general<R: Rng>(
    rng: &mut R,
    p: &InstanceParams,
    n_publics: usize,
    max_public_cost: u64,
) -> GeneralInstance {
    let base = random_set(rng, p);
    let publics = (0..n_publics)
        .map(|_| {
            let sz = rng.gen_range(1..=3.min(base.n_attrs));
            let mut pool: Vec<u32> = (0..base.n_attrs as u32).collect();
            pool.shuffle(rng);
            PublicSpec {
                attrs: AttrSet::from_indices(&pool[..sz]),
                cost: rng.gen_range(1..=max_public_cost),
            }
        })
        .collect();
    GeneralInstance { base, publics }
}

/// A random layered boolean workflow: `layers × width` private modules,
/// each with `fan_in` inputs drawn from the previous layer's outputs
/// (first layer reads the initial inputs) and one output, computed by a
/// random truth table.
pub fn random_layered_workflow<R: Rng>(
    rng: &mut R,
    layers: usize,
    width: usize,
    fan_in: usize,
) -> Workflow {
    assert!(layers >= 1 && width >= 1 && fan_in >= 1);
    let mut b = WorkflowBuilder::new();
    let mut prev = b.bool_attrs("in", width.max(fan_in));
    for layer in 0..layers {
        let mut next_attrs = Vec::with_capacity(width);
        for m in 0..width {
            let out = b.attr(&format!("l{layer}m{m}"), sv_relation::Domain::boolean());
            let mut ins = prev.clone();
            ins.shuffle(rng);
            ins.truncate(fan_in);
            let table: Vec<Vec<u32>> = (0..(1usize << fan_in))
                .map(|_| vec![u32::from(rng.gen_bool(0.5))])
                .collect();
            b.module(
                &format!("m{layer}_{m}"),
                &ins,
                &[out],
                Visibility::Private,
                ModuleFn::table(vec![2; fan_in], table),
            );
            next_attrs.push(out);
        }
        prev = next_attrs;
    }
    b.build().expect("layered workflow is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sv_optimize::exact::{exact_cardinality, exact_set};

    #[test]
    fn random_cardinality_is_solvable_and_reproducible() {
        let p = InstanceParams::default();
        let a = random_cardinality(&mut StdRng::seed_from_u64(1), &p);
        let b = random_cardinality(&mut StdRng::seed_from_u64(1), &p);
        assert_eq!(a.n_attrs, b.n_attrs);
        assert_eq!(a.modules, b.modules);
        assert!(a.n_attrs <= 26);
        // Feasible at the full set (requirement bounds respect sizes).
        assert!(a.feasible(&AttrSet::full(a.n_attrs)));
        let _ = exact_cardinality(&a).unwrap();
    }

    #[test]
    fn random_set_is_solvable() {
        let p = InstanceParams::default();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5 {
            let inst = random_set(&mut rng, &p);
            assert!(inst.feasible(&AttrSet::full(inst.n_attrs)));
            let s = exact_set(&inst).unwrap();
            assert!(inst.feasible(&s.hidden));
        }
    }

    #[test]
    fn random_general_has_publics() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_general(&mut rng, &InstanceParams::default(), 3, 4);
        assert_eq!(g.publics.len(), 3);
        assert!(g.publics.iter().all(|p| !p.attrs.is_empty()));
    }

    #[test]
    fn layered_workflow_runs() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = random_layered_workflow(&mut rng, 2, 3, 2);
        assert_eq!(w.len(), 6);
        assert!(w.is_all_private());
        let r = w.provenance_relation(1 << 12).unwrap();
        assert_eq!(r.len() as u128, w.input_space_size());
        r.check_fds(&w.fds()).unwrap();
    }

    #[test]
    fn layered_workflow_reproducible() {
        let w1 = random_layered_workflow(&mut StdRng::seed_from_u64(9), 2, 2, 2);
        let w2 = random_layered_workflow(&mut StdRng::seed_from_u64(9), 2, 2, 2);
        let r1 = w1.provenance_relation(1 << 12).unwrap();
        let r2 = w2.provenance_relation(1 << 12).unwrap();
        assert_eq!(r1, r2);
    }
}
