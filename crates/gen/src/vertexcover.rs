//! Minimum vertex cover in (sub)cubic graphs: instances and solvers.
//!
//! Source problem of the APX-hardness of bounded-data-sharing
//! Secure-View (Theorem 7, Appendix B.6.2 / Figure 5). Vertex cover in
//! cubic graphs is APX-hard [Alimonti–Kann]; the reduction maps covers
//! of size `K` to Secure-View solutions of cost `m′ + K` (Lemma 6).

use rand::seq::SliceRandom;
use rand::Rng;

/// An undirected graph with max degree ≤ 3 (validated).
#[derive(Clone, Debug)]
pub struct CubicGraph {
    /// Vertex count.
    pub n: usize,
    /// Edge list (u < v).
    pub edges: Vec<(usize, usize)>,
}

impl CubicGraph {
    /// Validates degrees and endpoint ranges.
    ///
    /// # Panics
    /// Panics if a vertex exceeds degree 3 or an endpoint is out of
    /// range.
    #[must_use]
    pub fn new(n: usize, edges: Vec<(usize, usize)>) -> Self {
        let mut deg = vec![0usize; n];
        for &(u, v) in &edges {
            assert!(u < n && v < n && u != v, "bad edge ({u},{v})");
            deg[u] += 1;
            deg[v] += 1;
        }
        assert!(
            deg.iter().all(|&d| d <= 3),
            "graph must have max degree ≤ 3"
        );
        Self { n, edges }
    }

    /// Vertex degrees.
    #[must_use]
    pub fn degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.n];
        for &(u, v) in &self.edges {
            deg[u] += 1;
            deg[v] += 1;
        }
        deg
    }

    /// Whether `cover` covers every edge.
    #[must_use]
    pub fn is_cover(&self, cover: &[bool]) -> bool {
        self.edges.iter().all(|&(u, v)| cover[u] || cover[v])
    }

    /// 2-approximation via maximal matching: take both endpoints of a
    /// greedily chosen maximal matching.
    #[must_use]
    pub fn two_approx(&self) -> Vec<bool> {
        let mut cover = vec![false; self.n];
        for &(u, v) in &self.edges {
            if !cover[u] && !cover[v] {
                cover[u] = true;
                cover[v] = true;
            }
        }
        cover
    }

    /// Exact minimum vertex cover by subset enumeration (`n ≤ 24`).
    #[must_use]
    pub fn exact(&self) -> Vec<bool> {
        assert!(self.n <= 24, "exact vertex cover supports ≤ 24 vertices");
        let mut best: Option<(u32, u32)> = None; // (popcount, mask)
        for mask in 0u32..(1 << self.n) {
            let pc = mask.count_ones();
            if let Some((bpc, _)) = best {
                if pc >= bpc {
                    continue;
                }
            }
            let cover: Vec<bool> = (0..self.n).map(|i| mask & (1 << i) != 0).collect();
            if self.is_cover(&cover) {
                best = Some((pc, mask));
            }
        }
        let (_, mask) = best.expect("empty cover works for empty edge set");
        (0..self.n).map(|i| mask & (1 << i) != 0).collect()
    }

    /// Random graph with max degree ≤ 3: a random perfect-ish matching
    /// plus a random cycle, trimmed to the degree bound.
    pub fn random<R: Rng>(rng: &mut R, n: usize, extra_edges: usize) -> Self {
        let mut deg = vec![0usize; n];
        let mut edges = Vec::new();
        let mut verts: Vec<usize> = (0..n).collect();
        verts.shuffle(rng);
        // Cycle through the shuffled vertices (degree 2 each).
        for i in 0..n {
            let (u, v) = (verts[i], verts[(i + 1) % n]);
            if u != v && !edges.contains(&(u.min(v), u.max(v))) {
                edges.push((u.min(v), u.max(v)));
                deg[u] += 1;
                deg[v] += 1;
            }
        }
        // Extra random chords while respecting degree 3.
        for _ in 0..extra_edges {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            let e = (u.min(v), u.max(v));
            if u != v && deg[u] < 3 && deg[v] < 3 && !edges.contains(&e) {
                edges.push(e);
                deg[u] += 1;
                deg[v] += 1;
            }
        }
        Self::new(n, edges)
    }
}

/// Number of true entries (cover size).
#[must_use]
pub fn cover_size(cover: &[bool]) -> usize {
    cover.iter().filter(|&&b| b).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn triangle_cover() {
        let g = CubicGraph::new(3, vec![(0, 1), (1, 2), (0, 2)]);
        let e = g.exact();
        assert_eq!(cover_size(&e), 2);
        assert!(g.is_cover(&e));
        let a = g.two_approx();
        assert!(g.is_cover(&a));
        assert!(cover_size(&a) <= 2 * 2);
    }

    #[test]
    fn random_graphs_respect_degree_and_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let g = CubicGraph::random(&mut rng, 10, 5);
            assert!(g.degrees().iter().all(|&d| d <= 3));
            let e = g.exact();
            let a = g.two_approx();
            assert!(g.is_cover(&e) && g.is_cover(&a));
            assert!(cover_size(&a) <= 2 * cover_size(&e));
            // Cubic graphs: any cover ≥ m/3 (each vertex covers ≤ 3).
            assert!(3 * cover_size(&e) >= g.edges.len());
        }
    }

    #[test]
    #[should_panic(expected = "max degree")]
    fn degree_bound_enforced() {
        let _ = CubicGraph::new(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]);
    }
}
