//! The paper's hardness reductions as executable instance transformers.
//!
//! Each reduction returns both the Secure-View instance and the
//! attribute/module index maps needed to translate solutions back, so
//! the correspondence lemmas (B.4.2's equivalence, Lemma 5, Lemma 6,
//! C.2's equivalence, Lemma 8) are tested end-to-end:
//!
//! | reduction | paper | hardness implied |
//! |-----------|-------|------------------|
//! | set cover → cardinality constraints | B.4.2 | `Ω(log n)` (Thm 5) |
//! | label cover → set constraints (Fig 4) | B.5.2 | `ℓ_max^ε` (Thm 6) |
//! | cubic vertex cover → cardinality, γ = 1 (Fig 5) | B.6.2 | APX (Thm 7) |
//! | set cover → general, no sharing | C.2 | `Ω(log n)` (Thm 9) |
//! | label cover → general (Fig 6) | C.3 | `Ω(2^{log^{1-γ} n})` (Thm 10) |

use crate::labelcover::LabelCover;
use crate::setcover::SetCover;
use crate::vertexcover::CubicGraph;
use sv_optimize::{
    CardModule, CardinalityInstance, GeneralInstance, PublicSpec, SetInstance, SetModule,
};
use sv_relation::AttrSet;

/// Result of the B.4.2 reduction (set cover → cardinality constraints).
pub struct SetCoverCard {
    /// The Secure-View instance.
    pub instance: CardinalityInstance,
    /// Attribute id of `a_i` (the data shared by set `S_i`'s edges).
    pub a_attr: Vec<u32>,
}

/// B.4.2: set cover → Secure-View with cardinality constraints.
///
/// Module `z` produces one shared datum `a_i` per set; module `f_j` per
/// element consumes `{a_i : u_j ∈ S_i}`. `L_z = ⟨(0,1)⟩`,
/// `L_j = ⟨(1,0)⟩`; unit costs. Minimum solutions hide exactly the
/// `a_i` of a minimum cover (cover size = solution cost).
#[must_use]
pub fn setcover_to_cardinality(sc: &SetCover) -> SetCoverCard {
    let m = sc.sets.len();
    let n = sc.n_elements;
    // Attr ids: 0 = b_s (z's input); 1..=m: a_i; m+1..m+n: b_j.
    let a_attr: Vec<u32> = (1..=m as u32).collect();
    let mut modules = Vec::with_capacity(1 + n);
    modules.push(CardModule {
        inputs: vec![0],
        outputs: a_attr.clone(),
        list: vec![(0, 1)],
    });
    for j in 0..n {
        let inputs: Vec<u32> = sc
            .sets
            .iter()
            .enumerate()
            .filter(|(_, s)| s.contains(&j))
            .map(|(i, _)| a_attr[i])
            .collect();
        modules.push(CardModule {
            inputs,
            outputs: vec![(m + 1 + j) as u32],
            list: vec![(1, 0)],
        });
    }
    SetCoverCard {
        instance: CardinalityInstance {
            n_attrs: 1 + m + n,
            costs: vec![1; 1 + m + n],
            modules,
        },
        a_attr,
    }
}

/// Result of the B.5.2 reduction (label cover → set constraints).
pub struct LabelCoverSet {
    /// The Secure-View instance.
    pub instance: SetInstance,
    /// `b_attr_left[u][ℓ]` — attribute id of `b_{u,ℓ}` for `u ∈ U`.
    pub b_attr_left: Vec<Vec<u32>>,
    /// `b_attr_right[w][ℓ]` — attribute id of `b_{w,ℓ}` for `w ∈ U′`.
    pub b_attr_right: Vec<Vec<u32>>,
}

/// B.5.2 / Figure 4: label cover → Secure-View with set constraints.
///
/// Module `z` produces `b_{u,ℓ}` for every vertex and label
/// (`L_z` = all singletons); module `x_{uw}` per edge requires hiding
/// `{b_{u,ℓ1}, b_{w,ℓ2}}` for some `(ℓ1, ℓ2) ∈ R_{uw}` (Lemma 5:
/// assignments of cost `K` ↔ solutions of cost `K`).
#[must_use]
pub fn labelcover_to_set(lc: &LabelCover) -> LabelCoverSet {
    let l = lc.n_labels;
    // Attr ids: 0 = b_z; then left (u,ℓ); then right (w,ℓ); then
    // per-edge final outputs b_uw.
    let mut next = 1u32;
    let b_attr_left: Vec<Vec<u32>> = (0..lc.n_left)
        .map(|_| {
            (0..l)
                .map(|_| {
                    let id = next;
                    next += 1;
                    id
                })
                .collect()
        })
        .collect();
    let b_attr_right: Vec<Vec<u32>> = (0..lc.n_right)
        .map(|_| {
            (0..l)
                .map(|_| {
                    let id = next;
                    next += 1;
                    id
                })
                .collect()
        })
        .collect();
    let n_attrs = next as usize + lc.edges.len(); // + b_uw finals
    let mut modules = Vec::with_capacity(1 + lc.edges.len());
    // z: hide any single b_{u,ℓ}.
    let z_list: Vec<AttrSet> = b_attr_left
        .iter()
        .chain(b_attr_right.iter())
        .flat_map(|row| row.iter().map(|&a| AttrSet::from_indices(&[a])))
        .collect();
    modules.push(SetModule { list: z_list });
    for (u, w, rel) in &lc.edges {
        let list: Vec<AttrSet> = rel
            .iter()
            .map(|&(l1, l2)| AttrSet::from_indices(&[b_attr_left[*u][l1], b_attr_right[*w][l2]]))
            .collect();
        modules.push(SetModule { list });
    }
    LabelCoverSet {
        instance: SetInstance {
            n_attrs,
            costs: vec![1; n_attrs],
            modules,
        },
        b_attr_left,
        b_attr_right,
    }
}

/// Result of the B.6.2 reduction (cubic vertex cover → cardinality).
pub struct VertexCoverCard {
    /// The Secure-View instance (γ = 1: no data sharing).
    pub instance: CardinalityInstance,
    /// Attribute id of the edge `(y_v, z)` per vertex `v`.
    pub yz_attr: Vec<u32>,
    /// Number of graph edges `m′` (solutions cost `m′ + K`).
    pub m_edges: usize,
}

/// B.6.2 / Figure 5: vertex cover in cubic graphs → Secure-View with
/// cardinality constraints and **no data sharing**.
///
/// Per graph edge `(u,v)` a module `x_{uv}` (hide one outgoing edge);
/// per vertex a module `y_v` (hide all `d_v` incoming edges or its
/// outgoing edge to `z`); `z` hides one incoming edge. Lemma 6: covers
/// of size `K` ↔ solutions of cost `m′ + K`.
#[must_use]
pub fn vertexcover_to_cardinality(g: &CubicGraph) -> VertexCoverCard {
    let m = g.edges.len();
    // Attr ids: per edge e: s_e (initial input to x_e) = 3e,
    // e_to_u = 3e+1, e_to_v = 3e+2. Then per vertex v: f_v = 3m + v.
    // Final output of z: 3m + n.
    let n = g.n;
    let f_attr: Vec<u32> = (0..n).map(|v| (3 * m + v) as u32).collect();
    let n_attrs = 3 * m + n + 1;
    let mut modules = Vec::new();
    let mut incoming: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (e, &(u, v)) in g.edges.iter().enumerate() {
        let to_u = (3 * e + 1) as u32;
        let to_v = (3 * e + 2) as u32;
        incoming[u].push(to_u);
        incoming[v].push(to_v);
        modules.push(CardModule {
            inputs: vec![(3 * e) as u32],
            outputs: vec![to_u, to_v],
            list: vec![(0, 1)],
        });
    }
    for v in 0..n {
        let dv = incoming[v].len();
        modules.push(CardModule {
            inputs: incoming[v].clone(),
            outputs: vec![f_attr[v]],
            list: if dv > 0 {
                vec![(dv, 0), (0, 1)]
            } else {
                vec![(0, 1)]
            },
        });
    }
    modules.push(CardModule {
        inputs: f_attr.clone(),
        outputs: vec![(3 * m + n) as u32],
        list: vec![(1, 0)],
    });
    VertexCoverCard {
        instance: CardinalityInstance {
            n_attrs,
            costs: vec![1; n_attrs],
            modules,
        },
        yz_attr: f_attr,
        m_edges: m,
    }
}

/// Result of the C.2 reduction (set cover → general workflows).
pub struct SetCoverGeneral {
    /// The Secure-View instance (attribute costs 0, privatizing a set
    /// module costs 1).
    pub instance: GeneralInstance,
}

/// C.2: set cover → Secure-View in general workflows **without data
/// sharing**: public module per set, private module per element; hiding
/// a membership edge is free but forces privatizing its set module.
/// Covers of size `K` ↔ solutions of cost `K` (Theorem 9's `Ω(log n)`).
#[must_use]
pub fn setcover_to_general(sc: &SetCover) -> SetCoverGeneral {
    let m = sc.sets.len();
    let n = sc.n_elements;
    // Attr ids: a_i per set: 0..m. b_{ij} per membership: assigned next.
    // b_j finals: last n.
    let mut next = m as u32;
    let mut edge_attr: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n]; // per element: (set, attr)
    let mut set_attrs: Vec<AttrSet> = (0..m).map(|i| AttrSet::from_indices(&[i as u32])).collect();
    for (i, s) in sc.sets.iter().enumerate() {
        for &j in s {
            edge_attr[j].push((i, next));
            set_attrs[i].insert(sv_relation::AttrId(next));
            next += 1;
        }
    }
    let n_attrs = next as usize + n;
    let modules: Vec<SetModule> = (0..n)
        .map(|j| SetModule {
            list: edge_attr[j]
                .iter()
                .map(|&(_, a)| AttrSet::from_indices(&[a]))
                .collect(),
        })
        .collect();
    let publics: Vec<PublicSpec> = set_attrs
        .into_iter()
        .map(|attrs| PublicSpec { attrs, cost: 1 })
        .collect();
    SetCoverGeneral {
        instance: GeneralInstance {
            base: SetInstance {
                n_attrs,
                costs: vec![0; n_attrs],
                modules,
            },
            publics,
        },
    }
}

/// Result of the C.3 reduction (label cover → general workflows).
pub struct LabelCoverGeneral {
    /// The Secure-View instance (attribute costs 0, privatizing
    /// `z_{u,ℓ}` costs 1).
    pub instance: GeneralInstance,
}

/// C.3 / Figure 6: label cover → Secure-View in general workflows.
/// Private modules `v`, `y_{ℓ1ℓ2}`, `x_{uw}`; public modules `z_{u,ℓ}`
/// per vertex/label. Hiding `d_{u,w,ℓ1,ℓ2}` (free) satisfies `x_{uw}`
/// but privatizes `z_{u,ℓ1}` and `z_{w,ℓ2}` (cost 1 each). Lemma 8:
/// assignments of cost `K` ↔ solutions of cost `K`.
#[must_use]
pub fn labelcover_to_general(lc: &LabelCover) -> LabelCoverGeneral {
    let l = lc.n_labels;
    // Attr 0: d_v (v's output, input to every y). Then d_{u,w,ℓ1,ℓ2}
    // per edge/pair. (d_s and the final outputs are irrelevant to
    // feasibility and never hidden; we omit them from the attribute
    // space to keep exact search tractable — they carry cost 0 and
    // belong to no requirement, so this preserves all solution costs.)
    let mut next = 1u32;
    let mut x_modules: Vec<SetModule> = Vec::new();
    // Footprints of publics: left (u,ℓ) and right (w,ℓ).
    let mut left_fp: Vec<Vec<AttrSet>> = vec![vec![AttrSet::new(); l]; lc.n_left];
    let mut right_fp: Vec<Vec<AttrSet>> = vec![vec![AttrSet::new(); l]; lc.n_right];
    for (u, w, rel) in &lc.edges {
        let mut list = Vec::with_capacity(rel.len());
        for &(l1, l2) in rel {
            let a = next;
            next += 1;
            list.push(AttrSet::from_indices(&[a]));
            left_fp[*u][l1].insert(sv_relation::AttrId(a));
            right_fp[*w][l2].insert(sv_relation::AttrId(a));
        }
        x_modules.push(SetModule { list });
    }
    let n_attrs = next as usize;
    // v and the y_{ℓ1ℓ2} family: all satisfied by hiding d_v (attr 0,
    // cost 0, touching no public module).
    let mut modules = vec![SetModule {
        list: vec![AttrSet::from_indices(&[0])],
    }];
    modules.extend(x_modules);
    let publics: Vec<PublicSpec> = left_fp
        .into_iter()
        .flatten()
        .chain(right_fp.into_iter().flatten())
        .map(|attrs| PublicSpec { attrs, cost: 1 })
        .collect();
    LabelCoverGeneral {
        instance: GeneralInstance {
            base: SetInstance {
                n_attrs,
                costs: vec![0; n_attrs],
                modules,
            },
            publics,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertexcover::cover_size;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sv_optimize::exact::{exact_cardinality, exact_general, exact_set};
    use sv_optimize::greedy::greedy_cardinality;

    #[test]
    fn b42_cover_size_equals_solution_cost() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..5 {
            let sc = SetCover::random(&mut rng, 6, 5, 0.4);
            let red = setcover_to_cardinality(&sc);
            let opt = exact_cardinality(&red.instance).unwrap();
            let cover = sc.exact().unwrap();
            assert_eq!(opt.cost as usize, cover.len(), "B.4.2 correspondence");
            // The hidden attrs are a_i's of a valid cover.
            let chosen: Vec<usize> = red
                .a_attr
                .iter()
                .enumerate()
                .filter(|(_, &a)| opt.hidden.contains(sv_relation::AttrId(a)))
                .map(|(i, _)| i)
                .collect();
            assert!(sc.is_cover(&chosen));
        }
    }

    #[test]
    fn b52_label_cover_correspondence_lemma5() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..3 {
            let lc = LabelCover::random(&mut rng, 2, 2, 2, 0.5, 2);
            let red = labelcover_to_set(&lc);
            let opt = exact_set(&red.instance).unwrap();
            let asg = lc.exact();
            assert_eq!(opt.cost as usize, asg.cost(), "Lemma 5");
        }
    }

    #[test]
    fn b62_vertex_cover_correspondence_lemma6() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..3 {
            // Keep 3m + n + 1 ≤ 26 for the exact baseline.
            let g = CubicGraph::random(&mut rng, 5, 0);
            let red = vertexcover_to_cardinality(&g);
            // γ = 1: no attribute feeds two modules.
            let opt = exact_cardinality(&red.instance).unwrap();
            let k = cover_size(&g.exact());
            assert_eq!(opt.cost as usize, red.m_edges + k, "Lemma 6");
            // Bounded sharing: greedy is a 2-approximation here.
            let gr = greedy_cardinality(&red.instance).unwrap();
            assert!(gr.cost <= 2 * opt.cost);
        }
    }

    #[test]
    fn c2_general_cover_correspondence() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..4 {
            let sc = SetCover::random(&mut rng, 5, 4, 0.3);
            let red = setcover_to_general(&sc);
            if red.instance.base.n_attrs > 26 {
                continue; // exact baseline cap
            }
            let opt = exact_general(&red.instance).unwrap();
            let cover = sc.exact().unwrap();
            assert_eq!(opt.cost as usize, cover.len(), "C.2 correspondence");
        }
    }

    #[test]
    fn c3_label_cover_general_correspondence_lemma8() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..3 {
            let lc = LabelCover::random(&mut rng, 2, 2, 2, 0.5, 2);
            let red = labelcover_to_general(&lc);
            let opt = exact_general(&red.instance).unwrap();
            let asg = lc.exact();
            assert_eq!(opt.cost as usize, asg.cost(), "Lemma 8");
        }
    }

    #[test]
    fn b42_lp_rounding_stays_logarithmic() {
        // Sanity: Algorithm 1 on the set-cover gadget returns feasible
        // solutions within the analysed band.
        let mut rng = StdRng::seed_from_u64(23);
        let sc = SetCover::random(&mut rng, 8, 6, 0.35);
        let red = setcover_to_cardinality(&sc);
        let opt = exact_cardinality(&red.instance).unwrap();
        let sol = sv_optimize::cardinality::solve_rounding(&red.instance, &mut rng).unwrap();
        assert!(red.instance.feasible(&sol.hidden));
        let n = red.instance.n_modules() as f64;
        let bound = (16.0 * n.ln() + 2.0) * opt.cost as f64 + 4.0;
        assert!((sol.cost as f64) <= bound);
    }
}
