//! Worked-example gadgets: the Example-5 fan (Ω(n) composition gap) and
//! the Proposition-2 chain (doubly-exponential world-count shrinkage).

use sv_optimize::{SetInstance, SetModule};
use sv_relation::AttrSet;
use sv_workflow::{library, Workflow};

/// Example 5's fan workflow as a set-constraints instance.
///
/// Modules `m, m_1 … m_n, m′`; data `a_1` (cost 10), `a_2` (cost 11 —
/// the paper's `1 + ε` scaled to integers), `b_1 … b_n` (cost 10 each).
/// Requirements: `m` hides `a_1` or `a_2`; each `m_i` hides `a_2` or
/// `b_i`; `m′` hides any one `b_i`.
///
/// * union-of-standalone-optima cost: `10(n+1)` (hide `a_1` and all
///   `b_i`),
/// * workflow optimum: `21` (hide `a_2` and one `b_i`),
/// * ratio `Ω(n)` — the motivation for solving the workflow-level
///   problem (§4.2).
///
/// Attribute ids: `0 = a_1`, `1 = a_2`, `2.. = b_i`.
#[must_use]
pub fn example5_instance(n: usize) -> SetInstance {
    assert!(n >= 1);
    let mut costs = vec![10u64, 11];
    costs.extend(std::iter::repeat_n(10, n));
    let b = |i: usize| AttrSet::from_indices(&[(2 + i) as u32]);
    let mut modules = Vec::with_capacity(n + 2);
    // m: hide a1 or a2.
    modules.push(SetModule {
        list: vec![AttrSet::from_indices(&[0]), AttrSet::from_indices(&[1])],
    });
    // m_i: hide a2 (its incoming datum) or b_i (its outgoing one).
    for i in 0..n {
        modules.push(SetModule {
            list: vec![AttrSet::from_indices(&[1]), b(i)],
        });
    }
    // m′: hide any incoming b_i.
    modules.push(SetModule {
        list: (0..n).map(b).collect(),
    });
    SetInstance {
        n_attrs: 2 + n,
        costs,
        modules,
    }
}

/// The Proposition-2 chain: two one-one modules over `k` boolean wires
/// (`m_1` identity, `m_2` bitwise negation), with the hidden set being
/// `log₂ Γ` wires of the intermediate level `O_1`.
///
/// Returns the workflow and the (global) hidden attribute set.
///
/// # Panics
/// Panics unless `Γ` is a power of two with `log₂ Γ ≤ k`.
#[must_use]
pub fn prop2_chain(k: usize, gamma: u128) -> (Workflow, AttrSet) {
    assert!(gamma.is_power_of_two(), "Γ must be a power of two");
    let lg = gamma.trailing_zeros() as usize;
    assert!(lg <= k, "log₂ Γ must be at most k");
    let w = library::one_one_chain(2, k);
    // Attribute layout of `one_one_chain`: w0_* = 0..k, w1_* = k..2k,
    // w2_* = 2k..3k. Hide the first log₂ Γ wires of level 1.
    let hidden = AttrSet::from_iter((k..k + lg).map(|i| sv_relation::AttrId(i as u32)));
    (w, hidden)
}

/// Closed-form `log₂ |Worlds(R_1, V)|` for the standalone module of the
/// Proposition-2 chain: each of the `2^k` inputs maps to any of `Γ`
/// hidden-bit completions, so the count is `Γ^{2^k}`.
#[must_use]
pub fn prop2_standalone_worlds_log2(k: usize, gamma: u128) -> f64 {
    (1u128 << k) as f64 * (gamma as f64).log2()
}

/// Closed-form `log₂ |Worlds(R, V)|` for the full chain: the one-one
/// structure forces each group of `Γ` inputs (sharing visible bits) to
/// be *permuted*, so the count is `(Γ!)^{2^k / Γ}`.
#[must_use]
pub fn prop2_workflow_worlds_log2(k: usize, gamma: u128) -> f64 {
    let groups = (1u128 << k) as f64 / gamma as f64;
    let log2_fact: f64 = (2..=gamma).map(|i| (i as f64).log2()).sum();
    groups * log2_fact
}

/// Brute-force world counts for tiny chains (cross-checking the closed
/// forms): returns `(standalone, workflow)` counts.
///
/// The workflow count enumerates candidate functions
/// `g_1 : 2^k → 2^k`, keeping those that (a) match the visible bits of
/// `m_1`'s true output on every input and (b) are injective — the
/// relation-level characterization derived in Appendix B.1.
///
/// # Panics
/// Panics if `k > 2` (the standalone enumeration is
/// `(2^k + 1)^{2^k}`).
#[must_use]
pub fn prop2_count_bruteforce(k: usize, gamma: u128) -> (u64, u64) {
    assert!(k <= 2, "brute-force world counting supports k ≤ 2");
    let (w, hidden) = prop2_chain(k, gamma);
    let lg = gamma.trailing_zeros() as usize;

    // Standalone count via the generic possible-world enumerator.
    let sm = sv_core::StandaloneModule::from_workflow_module(&w, sv_workflow::ModuleId(0), 1 << 20)
        .expect("tiny module");
    // Module-local ids: inputs 0..k, outputs k..2k; hidden = the first
    // lg outputs (matches the global choice in `prop2_chain`).
    let local_hidden = AttrSet::from_iter((k..k + lg).map(|i| sv_relation::AttrId(i as u32)));
    let local_visible = local_hidden.complement(2 * k);
    let standalone = sv_core::worlds::enumerate_worlds(&sm, &local_visible, 1 << 34)
        .expect("within budget")
        .len() as u64;

    // Workflow count: injective g1 with matching visible bits.
    let n = 1usize << k;
    let truth: Vec<usize> = (0..n).collect(); // m1 = identity
    let vis_mask: usize = {
        // Visible bits of the intermediate level: all but the first lg
        // wires. Wire j corresponds to bit (k-1-j) of the integer
        // encoding? Bit order does not matter for counting; use low
        // bits as hidden.
        !((1usize << lg) - 1) & (n - 1)
    };
    let mut count = 0u64;
    let mut g = vec![0usize; n];
    loop {
        // Check injectivity and visibility.
        let mut seen = vec![false; n];
        let ok = (0..n).all(|x| {
            let y = g[x];
            if seen[y] {
                return false;
            }
            seen[y] = true;
            y & vis_mask == truth[x] & vis_mask
        });
        if ok {
            count += 1;
        }
        // Next candidate function (mixed radix over outputs).
        let mut done = true;
        for gx in g.iter_mut() {
            *gx += 1;
            if *gx < n {
                done = false;
                break;
            }
            *gx = 0;
        }
        if done {
            break;
        }
    }
    let _ = hidden;
    (standalone, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_optimize::exact::exact_set;
    use sv_optimize::greedy::greedy_set;

    #[test]
    fn example5_gap_grows_linearly() {
        for n in [2usize, 5, 9] {
            let inst = example5_instance(n);
            let opt = exact_set(&inst).unwrap();
            assert_eq!(opt.cost, 21, "hide a2 + one b_i");
            let greedy = greedy_set(&inst).unwrap();
            assert_eq!(greedy.cost, 10 * (n as u64 + 1), "union of optima");
            let ratio = greedy.cost as f64 / opt.cost as f64;
            assert!(ratio > 0.4 * n as f64, "Ω(n) gap, got {ratio}");
        }
    }

    #[test]
    fn prop2_closed_forms_match_bruteforce() {
        // k = 2, Γ = 2: standalone Γ^{2^k} = 16; workflow (Γ!)^{2^k/Γ}
        // = 2^2 = 4.
        let (standalone, workflow) = prop2_count_bruteforce(2, 2);
        assert_eq!(standalone, 16);
        assert_eq!(workflow, 4);
        assert!((prop2_standalone_worlds_log2(2, 2) - 4.0).abs() < 1e-9);
        assert!((prop2_workflow_worlds_log2(2, 2) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn prop2_ratio_is_doubly_exponential() {
        // log₂(ratio) = 2^k · (log₂ Γ − log₂(Γ!)/Γ): the ratio itself
        // is doubly exponential in k. The log doubles with each k.
        let r = |k: usize| prop2_standalone_worlds_log2(k, 4) - prop2_workflow_worlds_log2(k, 4);
        assert!(r(3) > 0.0, "standalone worlds dominate");
        assert!((r(4) - 2.0 * r(3)).abs() < 1e-9);
        assert!((r(8) - 16.0 * r(4)).abs() < 1e-6);
    }

    #[test]
    fn prop2_chain_stays_gamma_private() {
        // The point of Proposition 2: despite the world-count collapse,
        // privacy is preserved (OUT sizes stay ≥ Γ).
        let (w, hidden) = prop2_chain(2, 2);
        let visible = hidden.complement(w.schema().len());
        let report = sv_core::compose::WorldSearch::new(&w, visible)
            .run(1 << 26)
            .unwrap();
        for m in w.private_modules() {
            assert!(report.min_out(m) >= 2, "module {m:?}");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn prop2_rejects_non_power_gamma() {
        let _ = prop2_chain(3, 3);
    }
}
