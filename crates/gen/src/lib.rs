//! # sv-gen — hardness gadgets, reductions, and workload generators
//!
//! Everything the paper's lower-bound proofs and our benchmarks need:
//!
//! * [`setcover`] / [`labelcover`] / [`vertexcover`] — the source
//!   problems of the paper's reductions, with reference solvers
//!   (greedy `ln n` set cover, 2-approximation and exact vertex cover,
//!   exact label cover for small instances);
//! * [`reductions`] — the paper's five reductions as executable
//!   instance transformers with tested solution correspondences:
//!   set cover → cardinality constraints (B.4.2, Theorem 5 hardness),
//!   label cover → set constraints (B.5.2 / Figure 4, Lemma 5),
//!   cubic vertex cover → cardinality, no sharing (B.6.2 / Figure 5,
//!   Lemma 6), set cover → general workflows without data sharing
//!   (C.2, Theorem 9), label cover → general workflows (C.3 / Figure 6,
//!   Lemma 8);
//! * [`adversary`] — the Theorem-3 oracle adversary (`m_1` vs `m_2`
//!   with a hidden special subset) and the Theorem-1 set-disjointness
//!   module and Theorem-2 CNF module;
//! * [`gadgets`] — the Example-5 fan workflow (`Ω(n)` gap between the
//!   union of standalone optima and the workflow optimum) and the
//!   Proposition-2 one-one chain with exact world counts;
//! * [`random`] — seeded random instances and workflows for parameter
//!   sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod gadgets;
pub mod labelcover;
pub mod random;
pub mod reductions;
pub mod setcover;
pub mod vertexcover;
