//! Minimum set cover: instances, the greedy `H_n`-approximation, and an
//! exact solver for small instances.
//!
//! Source problem of two of the paper's reductions: Theorem 5's
//! `Ω(log n)` hardness for cardinality constraints (B.4.2) and
//! Theorem 9's `Ω(log n)` hardness for general workflows without data
//! sharing (C.2).

use rand::Rng;

/// A set-cover instance: universe `{0, …, n_elements-1}` and subsets.
#[derive(Clone, Debug)]
pub struct SetCover {
    /// Universe size.
    pub n_elements: usize,
    /// The subsets `S_1, …, S_M` (element indices).
    pub sets: Vec<Vec<usize>>,
}

impl SetCover {
    /// Validates element indices.
    ///
    /// # Panics
    /// Panics on out-of-range elements.
    #[must_use]
    pub fn new(n_elements: usize, sets: Vec<Vec<usize>>) -> Self {
        for s in &sets {
            for &e in s {
                assert!(e < n_elements, "element {e} out of universe");
            }
        }
        Self { n_elements, sets }
    }

    /// Whether the chosen set indices cover the universe.
    #[must_use]
    pub fn is_cover(&self, chosen: &[usize]) -> bool {
        let mut covered = vec![false; self.n_elements];
        for &i in chosen {
            for &e in &self.sets[i] {
                covered[e] = true;
            }
        }
        covered.into_iter().all(|c| c)
    }

    /// The greedy algorithm: repeatedly pick the set covering the most
    /// uncovered elements (`H_n ≤ ln n + 1` approximation).
    ///
    /// Returns the chosen set indices, or `None` if no cover exists.
    #[must_use]
    pub fn greedy(&self) -> Option<Vec<usize>> {
        let mut covered = vec![false; self.n_elements];
        let mut remaining = self.n_elements;
        let mut chosen = Vec::new();
        while remaining > 0 {
            let (best, gain) = self
                .sets
                .iter()
                .enumerate()
                .map(|(i, s)| (i, s.iter().filter(|&&e| !covered[e]).count()))
                .max_by_key(|&(_, g)| g)?;
            if gain == 0 {
                return None;
            }
            chosen.push(best);
            for &e in &self.sets[best] {
                if !covered[e] {
                    covered[e] = true;
                    remaining -= 1;
                }
            }
        }
        Some(chosen)
    }

    /// Exact minimum cover by subset enumeration over sets
    /// (requires `sets.len() ≤ 24`).
    #[must_use]
    pub fn exact(&self) -> Option<Vec<usize>> {
        let m = self.sets.len();
        assert!(m <= 24, "exact set cover supports ≤ 24 sets");
        let mut best: Option<Vec<usize>> = None;
        for mask in 0u32..(1 << m) {
            let chosen: Vec<usize> = (0..m).filter(|&i| mask & (1 << i) != 0).collect();
            if let Some(b) = &best {
                if chosen.len() >= b.len() {
                    continue;
                }
            }
            if self.is_cover(&chosen) {
                best = Some(chosen);
            }
        }
        best
    }

    /// Random instance: `m` sets, each including every element
    /// independently with probability `density`; a final "patch" set
    /// covers any stray uncovered elements so a cover always exists.
    pub fn random<R: Rng>(rng: &mut R, n_elements: usize, m: usize, density: f64) -> Self {
        let mut sets: Vec<Vec<usize>> = (0..m)
            .map(|_| (0..n_elements).filter(|_| rng.gen_bool(density)).collect())
            .collect();
        let mut covered = vec![false; n_elements];
        for s in &sets {
            for &e in s {
                covered[e] = true;
            }
        }
        let stray: Vec<usize> = (0..n_elements).filter(|&e| !covered[e]).collect();
        if !stray.is_empty() {
            sets.push(stray);
        }
        Self::new(n_elements, sets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small() -> SetCover {
        // Optimal cover: {0,1} with sets {0,1,2} and {2,3}.
        SetCover::new(
            4,
            vec![vec![0, 1, 2], vec![2, 3], vec![0], vec![1], vec![3]],
        )
    }

    #[test]
    fn exact_finds_minimum() {
        let sc = small();
        let e = sc.exact().unwrap();
        assert_eq!(e.len(), 2);
        assert!(sc.is_cover(&e));
    }

    #[test]
    fn greedy_is_feasible_and_bounded() {
        let sc = small();
        let g = sc.greedy().unwrap();
        assert!(sc.is_cover(&g));
        // H_4 ≈ 2.08: greedy ≤ 3 here.
        assert!(g.len() <= 3);
    }

    #[test]
    fn greedy_logn_worst_case_shape() {
        // Classic greedy-vs-optimal gap family: elements 0..2^k-1,
        // two "half" sets (evens/odds of a specific split) vs chained
        // doubling sets. Keep it simple: verify greedy never beats exact
        // and both cover.
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            let sc = SetCover::random(&mut rng, 12, 8, 0.3);
            let g = sc.greedy().unwrap();
            let e = sc.exact().unwrap();
            assert!(sc.is_cover(&g));
            assert!(g.len() >= e.len());
        }
    }

    #[test]
    fn uncoverable_detected() {
        let sc = SetCover::new(3, vec![vec![0], vec![1]]);
        assert!(sc.greedy().is_none());
        assert!(sc.exact().is_none());
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn bad_elements_rejected() {
        let _ = SetCover::new(2, vec![vec![5]]);
    }
}
