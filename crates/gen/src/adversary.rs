//! Lower-bound constructions of §3 as executable artifacts.
//!
//! * **Theorem 1** — [`disjointness_module`]: the set-disjointness
//!   module whose safety decision requires reading `Ω(N)` rows from the
//!   data supplier. (Fidelity note: the paper states the visible set as
//!   `{id, y}`, but with `id` visible every input group is a singleton
//!   and the view is unsafe under the paper's own Lemma-4 condition
//!   regardless of `A ∩ B`; the reduction works as intended with
//!   `V = {y}`, which is what we implement — safety then holds iff two
//!   distinct `y` values exist iff `A ∩ B ≠ ∅`.)
//! * **Theorem 2** — [`cnf_module`]: the UNSAT-encoding module
//!   `m(x, y) = ¬g(x) ∧ ¬y`; `V = {x…, z}` is safe for `Γ = 2` iff `g`
//!   is unsatisfiable.
//! * **Theorem 3** — [`AdversarialOracle`]: the oracle adversary that
//!   answers YES for hidden sets smaller than `ℓ/4` and NO otherwise,
//!   tracking how many special-subset candidates `A` (size `ℓ/2`)
//!   remain consistent — so any subset-probing search needs `2^Ω(ℓ)`
//!   queries to pin the minimum cost down.
//!
//! ### Fidelity note (documented deviation)
//!
//! The paper's appendix sketches concrete functions `m_1` (threshold
//! `≥ ℓ/4`) and `m_2` (threshold plus a special subset `A`) and asserts
//! the oracle's (P1)/(P2) invariants for them. Under the paper's own
//! Definition 2 those assertions do not hold literally: a threshold
//! module pins its output on input groups whose *visible* ones already
//! exceed the threshold, so small hidden sets are not safe; and safety
//! is monotone in the hidden set (Proposition 1), so (P2) cannot hold
//! for supersets of `A`. The oracle game itself — which is all the
//! lower bound needs — is unaffected: the adversary answers by the
//! (P1)/(P2) policy and counts surviving candidates. We therefore
//! (a) implement the adversary abstractly ([`AdversarialOracle`]) and
//! (b) expose the *true* threshold module [`thm3_m1`] with tests of its
//! actual safety frontier (`h > 3ℓ/4` hidden inputs, or the hidden
//! output). See EXPERIMENTS.md (E4).

use rand::Rng;
use sv_core::oracle::SafeViewOracle;
use sv_core::StandaloneModule;
use sv_relation::{AttrDef, AttrSet, Domain, Relation, Schema};

/// Theorem 1's module: inputs `a`, `b`, `id ∈ [0, N+1)`, output
/// `y = a ∧ b`; row `i < N` encodes element `i` (`a = 1` iff `i ∈ A`,
/// `b = 1` iff `i ∈ B`), row `N` is the fixed `(1, 0)` row.
///
/// With `V = {y}` (hide `{a, b, id}`; see the module-level fidelity
/// note) and `Γ = 2`, the view is safe iff `A ∩ B ≠ ∅` — deciding it
/// requires seeing nearly all rows.
#[must_use]
pub fn disjointness_module(n: usize, in_a: &[bool], in_b: &[bool]) -> StandaloneModule {
    assert_eq!(in_a.len(), n);
    assert_eq!(in_b.len(), n);
    let schema = Schema::new(vec![
        AttrDef {
            name: "a".into(),
            domain: Domain::boolean(),
        },
        AttrDef {
            name: "b".into(),
            domain: Domain::boolean(),
        },
        AttrDef {
            name: "id".into(),
            domain: Domain::new((n + 1) as u32),
        },
        AttrDef {
            name: "y".into(),
            domain: Domain::boolean(),
        },
    ]);
    let mut rows: Vec<Vec<u32>> = (0..n)
        .map(|i| {
            let a = u32::from(in_a[i]);
            let b = u32::from(in_b[i]);
            vec![a, b, i as u32, a & b]
        })
        .collect();
    rows.push(vec![1, 0, n as u32, 0]);
    let rel = Relation::from_values(schema, rows).expect("valid rows");
    StandaloneModule::new(
        rel,
        AttrSet::from_indices(&[0, 1, 2]),
        AttrSet::from_indices(&[3]),
    )
    .expect("FD a,b,id -> y holds")
}

/// The visible set `{y}` of the Theorem-1 construction (see the
/// fidelity note in the module docs).
#[must_use]
pub fn disjointness_visible() -> AttrSet {
    AttrSet::from_indices(&[3])
}

/// A CNF formula over `ℓ` boolean variables (clauses of literals;
/// positive literal `+v`, negative `-v` encoded as `(var, positive)`).
#[derive(Clone, Debug)]
pub struct Cnf {
    /// Variable count `ℓ`.
    pub n_vars: usize,
    /// Clauses: disjunctions of `(variable, is_positive)` literals.
    pub clauses: Vec<Vec<(usize, bool)>>,
}

impl Cnf {
    /// Evaluates the formula on an assignment.
    #[must_use]
    pub fn eval(&self, assign: &[bool]) -> bool {
        self.clauses.iter().all(|c| {
            c.iter()
                .any(|&(v, pos)| if pos { assign[v] } else { !assign[v] })
        })
    }

    /// Brute-force satisfiability (`ℓ ≤ 24`).
    #[must_use]
    pub fn satisfiable(&self) -> bool {
        assert!(self.n_vars <= 24);
        (0u32..(1 << self.n_vars)).any(|mask| {
            let assign: Vec<bool> = (0..self.n_vars).map(|v| mask & (1 << v) != 0).collect();
            self.eval(&assign)
        })
    }

    /// Random 3-CNF with the given clause count.
    pub fn random_3cnf<R: Rng>(rng: &mut R, n_vars: usize, n_clauses: usize) -> Self {
        let clauses = (0..n_clauses)
            .map(|_| {
                (0..3)
                    .map(|_| (rng.gen_range(0..n_vars), rng.gen_bool(0.5)))
                    .collect()
            })
            .collect();
        Self { n_vars, clauses }
    }
}

/// Theorem 2's module: inputs `x_1 … x_ℓ, y`, output
/// `z = ¬g(x) ∧ ¬y`. Hiding `{y}` is safe for `Γ = 2` iff `g` is
/// unsatisfiable.
#[must_use]
pub fn cnf_module(g: &Cnf) -> StandaloneModule {
    let l = g.n_vars;
    let mut attrs: Vec<AttrDef> = (0..l)
        .map(|v| AttrDef {
            name: format!("x{v}"),
            domain: Domain::boolean(),
        })
        .collect();
    attrs.push(AttrDef {
        name: "y".into(),
        domain: Domain::boolean(),
    });
    attrs.push(AttrDef {
        name: "z".into(),
        domain: Domain::boolean(),
    });
    let schema = Schema::new(attrs);
    let mut rows = Vec::with_capacity(1 << (l + 1));
    for mask in 0u32..(1 << l) {
        let assign: Vec<bool> = (0..l).map(|v| mask & (1 << v) != 0).collect();
        let gx = g.eval(&assign);
        for y in 0..2u32 {
            let z = u32::from(!gx && y == 0);
            let mut row: Vec<u32> = (0..l).map(|v| u32::from(assign[v])).collect();
            row.push(y);
            row.push(z);
            rows.push(row);
        }
    }
    let rel = Relation::from_values(schema, rows).expect("valid rows");
    let inputs = AttrSet::from_iter((0..=l).map(|i| sv_relation::AttrId(i as u32)));
    let outputs = AttrSet::from_indices(&[(l + 1) as u32]);
    StandaloneModule::new(rel, inputs, outputs).expect("FD holds")
}

/// The Theorem-2 visible set `{x_1 … x_ℓ, z}` (hide `y`).
#[must_use]
pub fn cnf_visible(l: usize) -> AttrSet {
    let mut v = AttrSet::from_iter((0..l).map(|i| sv_relation::AttrId(i as u32)));
    v.insert(sv_relation::AttrId((l + 1) as u32));
    v
}

/// The Theorem-3 adversarial Safe-View oracle over `ℓ` input
/// attributes (`ℓ` divisible by 4) plus one output attribute.
///
/// Answers per the proof's invariants: a queried visible set `V` is
/// declared safe iff its hidden input part has size `< ℓ/4` — an
/// answer consistent with `m_1` and with every `m_2`-candidate whose
/// special subset `A` has not been "used up". The adversary tracks how
/// many `A`-candidates (subsets of size `ℓ/2`) remain consistent; the
/// search cannot terminate correctly while candidates remain, giving
/// the `2^Ω(ℓ)` bound.
/// [`AdversarialOracle::remaining_candidates_lower`] exposes a lower
/// bound on the number of remaining candidates.
pub struct AdversarialOracle {
    l: usize,
    calls: u64,
    /// Count of queries that each eliminated at most `C(3ℓ/4, ℓ/4)`
    /// special-subset candidates.
    eliminating_queries: u64,
    /// `C(ℓ, ℓ/2)` — total special-subset candidates.
    total_candidates: f64,
    /// `C(3ℓ/4, ℓ/4)` — maximum candidates a single NO answer kills.
    per_query_elimination: f64,
}

impl AdversarialOracle {
    /// Creates the adversary for `ℓ` input attributes.
    ///
    /// # Panics
    /// Panics unless `ℓ ≥ 4` and `4 | ℓ`.
    #[must_use]
    pub fn new(l: usize) -> Self {
        assert!(
            l >= 4 && l.is_multiple_of(4),
            "ℓ must be a positive multiple of 4"
        );
        let total_candidates = (Self::ln_choose(l, l / 2)).exp();
        let per_query_elimination = (Self::ln_choose(3 * l / 4, l / 4)).exp();
        Self {
            l,
            calls: 0,
            eliminating_queries: 0,
            total_candidates,
            per_query_elimination,
        }
    }

    fn ln_choose(n: usize, k: usize) -> f64 {
        // ln C(n, k) via lgamma-free summation (exact enough for bounds).
        let mut s = 0.0;
        for i in 0..k {
            s += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
        }
        s
    }

    /// Lower bound on the number of special subsets `A` still consistent
    /// with all answers so far:
    /// `C(ℓ, ℓ/2) − q · C(3ℓ/4, ℓ/4)` where `q` counts
    /// candidate-eliminating queries (each NO answer on a candidate-
    /// compatible hidden set kills at most `C(3ℓ/4, ℓ/4)` subsets).
    #[must_use]
    pub fn remaining_candidates_lower(&self) -> f64 {
        self.total_candidates - self.eliminating_queries as f64 * self.per_query_elimination
    }

    /// Queries needed (lower bound) before the candidates can be
    /// exhausted: `C(ℓ, ℓ/2) / C(3ℓ/4, ℓ/4) ≥ (4/3)^{ℓ/2}` (the
    /// paper's count, yielding the `2^Ω(k)` bound).
    #[must_use]
    pub fn required_queries(&self) -> f64 {
        self.total_candidates / self.per_query_elimination
    }
}

impl SafeViewOracle for AdversarialOracle {
    fn k(&self) -> usize {
        self.l + 1 // inputs plus the single output
    }

    fn is_safe(&mut self, visible: &AttrSet) -> bool {
        self.calls += 1;
        // Output attribute has id ℓ; it must be visible for the
        // Theorem-3 cost regime (its cost ℓ exceeds any input set).
        let inputs = AttrSet::from_iter((0..self.l).map(|i| sv_relation::AttrId(i as u32)));
        let hidden_inputs = inputs.difference(visible);
        let output_hidden = !visible.contains(sv_relation::AttrId(self.l as u32));
        if output_hidden {
            // Hiding the output is always safe for both m1 and m2 (the
            // single boolean output with Γ = 2) — and eliminates no
            // candidate.
            return true;
        }
        let safe = hidden_inputs.len() < self.l / 4;
        if !safe && hidden_inputs.len() <= self.l / 2 {
            // A NO answer on a set that could have been some A ⊇ V̄:
            // eliminates at most C(3ℓ/4, ℓ/4) candidates.
            self.eliminating_queries += 1;
        }
        safe
    }

    fn calls(&self) -> u64 {
        self.calls
    }
}

/// Concrete `m_1` of the Theorem-3 sketch for small `ℓ`: outputs 1 iff
/// at least `ℓ/4` inputs are 1. Its *true* safety frontier under
/// Definition 2 (hidden inputs `h > 3ℓ/4`, or the hidden output) is
/// tested explicitly; see the module-level fidelity note.
#[must_use]
pub fn thm3_m1(l: usize) -> StandaloneModule {
    let mut attrs: Vec<AttrDef> = (0..l)
        .map(|v| AttrDef {
            name: format!("i{v}"),
            domain: Domain::boolean(),
        })
        .collect();
    attrs.push(AttrDef {
        name: "y".into(),
        domain: Domain::boolean(),
    });
    let schema = Schema::new(attrs);
    let rows: Vec<Vec<u32>> = (0u32..(1 << l))
        .map(|mask| {
            let ones = mask.count_ones() as usize;
            let mut row: Vec<u32> = (0..l).map(|v| (mask >> v) & 1).collect();
            row.push(u32::from(4 * ones >= l));
            row
        })
        .collect();
    let rel = Relation::from_values(schema, rows).expect("valid rows");
    StandaloneModule::new(
        rel,
        AttrSet::from_iter((0..l).map(|i| sv_relation::AttrId(i as u32))),
        AttrSet::from_indices(&[l as u32]),
    )
    .expect("FD holds")
}

/// The Theorem-3 cost vector: inputs cost 1, the output costs `ℓ`.
#[must_use]
pub fn thm3_costs(l: usize) -> Vec<u64> {
    let mut c = vec![1u64; l];
    c.push(l as u64);
    c
}

/// The Theorem-3 minimum-cost search on the realizable threshold module
/// [`thm3_m1`], run through the parallel branch-and-bound lattice sweep
/// (`sv-core::sweep`). The `2^Ω(ℓ)` lower bound says the *probe count*
/// cannot be beaten — sharding the probes across threads and cutting
/// cost-dominated masks is exactly the remaining headroom, which is why
/// this gadget doubles as the sweep's adversarial benchmark workload.
///
/// # Panics
/// Panics if `ℓ + 1` exceeds the dense-enumeration maximum.
#[must_use]
pub fn thm3_min_cost_sweep(
    l: usize,
    config: &sv_core::SweepConfig,
) -> (Option<(AttrSet, u64)>, sv_core::SweepStats) {
    let m = thm3_m1(l);
    sv_core::sweep::min_cost_sweep(&m, &thm3_costs(l), 2, config)
        .expect("thm3 module fits dense enumeration")
}

/// A **fleet** of Theorem-3 min-cost searches: `instances` independent
/// copies of the [`thm3_m1`] workload, work-stolen across the worker
/// pool ([`sv_core::sweep::sweep_workflow_parallel`]) with the
/// intra-instance shard pool nested under the same [`sv_core::
/// SweepConfig`] budget — the adversarial serving scenario where many
/// tenants ask the same `2^Ω(ℓ)`-hard question concurrently. All
/// instances share the materialized module (clones share the interned
/// kernel, so group indexes warm once for the whole fleet); per-instance
/// results are deterministic and identical, which the property suite
/// uses to prove parallel-across-instances ≡ serial.
///
/// # Panics
/// Panics if `ℓ + 1` exceeds the dense-enumeration maximum.
#[must_use]
pub fn thm3_min_cost_fleet(
    l: usize,
    instances: usize,
    config: &sv_core::SweepConfig,
) -> Vec<(Option<(AttrSet, u64)>, sv_core::SweepStats)> {
    let m = thm3_m1(l);
    let costs = thm3_costs(l);
    sv_core::sweep::sweep_workflow_parallel(instances, config, |_, inner| {
        sv_core::sweep::min_cost_sweep(&m, &costs, 2, inner)
    })
    .expect("thm3 module fits dense enumeration")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sv_core::oracle::{
        decide_safety_streaming, min_cost_via_oracle, CountingSupplier, HonestOracle,
    };
    use sv_workflow::ModuleFn;

    #[test]
    fn thm1_safety_iff_intersection() {
        // A ∩ B ≠ ∅ ⇒ {id, y} safe for Γ = 2; disjoint ⇒ unsafe.
        let n = 8;
        let a = vec![true, false, true, false, false, false, false, true];
        let b_hit = vec![false, false, true, false, false, false, false, false];
        let b_miss = vec![false, true, false, true, true, false, false, false];
        let m_hit = disjointness_module(n, &a, &b_hit);
        let m_miss = disjointness_module(n, &a, &b_miss);
        assert!(m_hit.is_safe(&disjointness_visible(), 2));
        assert!(!m_miss.is_safe(&disjointness_visible(), 2));
    }

    #[test]
    fn thm1_streaming_reads_linearly_many_rows() {
        // On a disjoint instance the checker cannot decide before
        // exhausting (almost) all rows.
        let n = 16;
        let a: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let b: Vec<bool> = (0..n).map(|i| i % 2 == 1).collect();
        let m = disjointness_module(n, &a, &b);
        // Stream the actual recorded rows through a supplier that
        // replays the relation (inputs: a, b, id).
        let rel_rows: Vec<Vec<u32>> = m
            .relation()
            .rows()
            .iter()
            .map(|t| t.values()[..3].to_vec())
            .collect();
        let lookup: std::collections::HashMap<Vec<u32>, Vec<u32>> = m
            .relation()
            .rows()
            .iter()
            .map(|t| (t.values()[..3].to_vec(), vec![t.values()[3]]))
            .collect();
        let mut supplier = CountingSupplier::new(ModuleFn::closure(move |x: &[u32]| {
            lookup[&x.to_vec()].clone()
        }));
        let v = decide_safety_streaming(&mut supplier, &m, &rel_rows, &disjointness_visible(), 2);
        assert!(!v.safe);
        // All rows in the failing group must be seen: ≥ N of N+1 calls.
        assert!(v.calls as usize >= n, "calls = {}", v.calls);
    }

    #[test]
    fn thm2_safety_iff_unsat() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_sat = false;
        let mut seen_unsat = false;
        for trial in 0..20 {
            // Dense random 3-CNFs are mostly UNSAT; sparse mostly SAT.
            let n_clauses = if trial % 2 == 0 { 3 } else { 30 };
            let g = Cnf::random_3cnf(&mut rng, 4, n_clauses);
            let m = cnf_module(&g);
            let safe = m.is_safe(&cnf_visible(4), 2);
            assert_eq!(safe, !g.satisfiable(), "Theorem 2 equivalence");
            seen_sat |= g.satisfiable();
            seen_unsat |= !g.satisfiable();
        }
        assert!(seen_sat && seen_unsat, "both branches exercised");
    }

    #[test]
    fn thm3_m1_true_safety_frontier() {
        // Under Definition 2 the threshold module is safe iff more than
        // 3l/4 inputs are hidden (any smaller hidden set leaves some
        // visible group with the output pinned), or the output is
        // hidden (boolean output, Gamma = 2).
        let l = 8;
        let m1 = thm3_m1(l);
        for mask in 0u32..(1 << l) {
            let hidden_inputs = AttrSet::from_iter(
                (0..l)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| sv_relation::AttrId(i as u32)),
            );
            let h = hidden_inputs.len();
            let visible = hidden_inputs.complement(l + 1);
            assert_eq!(m1.is_safe(&visible, 2), h > 3 * l / 4, "h = {h}");
        }
        // Hiding the output alone is safe.
        let only_output = AttrSet::from_indices(&[l as u32]);
        assert!(m1.is_safe_hidden(&only_output, 2));
    }

    #[test]
    fn thm3_m1_min_cost_regime() {
        // Costs: inputs 1 each, output l. True optimum: 3l/4 + 1 hidden
        // inputs beats the output (cost l). The paper's sketch says
        // 3l/4; the off-by-one follows from the Definition-2 strictness
        // documented in the module docs.
        let l = 8;
        let m1 = thm3_m1(l);
        let (_, cost) = m1.min_cost_safe_hidden(&thm3_costs(l), 2).unwrap().unwrap();
        assert_eq!(cost, (3 * l / 4 + 1) as u64);
    }

    #[test]
    fn thm3_sweep_matches_serial_across_threads() {
        let l = 8;
        let m1 = thm3_m1(l);
        let serial = m1.min_cost_safe_hidden(&thm3_costs(l), 2).unwrap();
        for threads in [1usize, 2, 4] {
            let (found, stats) = thm3_min_cost_sweep(l, &sv_core::SweepConfig::parallel(threads));
            assert_eq!(found, serial, "threads={threads}");
            assert_eq!(stats.visited + stats.pruned, stats.lattice);
            assert_eq!(stats.lattice, 1 << (l + 1));
        }
    }

    #[test]
    fn thm3_fleet_matches_serial_at_any_thread_count() {
        let l = 8;
        let serial = thm3_min_cost_sweep(l, &sv_core::SweepConfig::serial());
        for threads in [1usize, 2, 4, 8] {
            let fleet = thm3_min_cost_fleet(l, 5, &sv_core::SweepConfig::parallel(threads));
            assert_eq!(fleet.len(), 5);
            for (found, stats) in &fleet {
                assert_eq!(*found, serial.0, "threads={threads}");
                assert_eq!(stats.visited + stats.pruned, stats.lattice);
            }
        }
        assert!(thm3_min_cost_fleet(l, 0, &sv_core::SweepConfig::serial()).is_empty());
    }

    #[test]
    fn adversarial_oracle_forces_exponential_search() {
        // At l = 32 the adversary's candidate pool C(32,16) requires
        // more than C(32,16)/C(24,8) > 800 maximally-eliminating
        // queries; the paper's (4/3)^{l/2} lower bound is looser.
        let l = 32;
        let mut oracle = AdversarialOracle::new(l);
        assert!(oracle.required_queries() >= (4.0f64 / 3.0).powi(l as i32 / 2));
        // Probe 500 distinct size-l/2 hidden sets (sliding windows) -
        // every one is answered NO and eliminates candidates, yet the
        // pool survives.
        for start in 0..500u32 {
            let hidden = AttrSet::from_iter(
                (0..l / 2).map(|i| sv_relation::AttrId(((start as usize + i * 3) % l) as u32)),
            );
            let visible = hidden.complement(l + 1);
            assert!(!oracle.is_safe(&visible), "size-l/2 sets answered NO");
        }
        assert_eq!(oracle.calls(), 500);
        assert!(
            oracle.remaining_candidates_lower() > 0.0,
            "candidates must survive 500 queries (remaining = {:.3e})",
            oracle.remaining_candidates_lower()
        );
    }

    #[test]
    fn honest_oracle_probing_cost_on_threshold_module() {
        // Cost-ordered probing on the realizable threshold module must
        // wade through every subset cheaper than the optimum before
        // accepting - already hundreds of calls at l = 8.
        let l = 8;
        let m1 = thm3_m1(l);
        let mut oracle = HonestOracle::new(m1, 2);
        let (found, calls) = min_cost_via_oracle(&mut oracle, &thm3_costs(l));
        let (_, cost) = found.unwrap();
        assert_eq!(cost, (3 * l / 4 + 1) as u64);
        assert!(calls > 200, "calls = {calls}");
    }
}
