//! Minimum label cover: instances and solvers.
//!
//! Source problem of the set-constraints hardness (Theorem 6, B.5.2)
//! and the general-workflow cardinality hardness (Theorem 10, C.3).
//! An instance is a bipartite graph `H = (U, U′, E)` with a label set
//! `L` and a non-empty relation `R_{uw} ⊆ L × L` per edge; a feasible
//! assignment gives each vertex a label set such that every edge has a
//! satisfying pair; the objective is the total number of assigned
//! labels.

use rand::Rng;
use std::collections::BTreeSet;

/// One edge of a label-cover instance: `(u, w, R_uw)`.
pub type LcEdge = (usize, usize, Vec<(usize, usize)>);

/// A label-cover instance.
#[derive(Clone, Debug)]
pub struct LabelCover {
    /// Left vertex count `|U|`.
    pub n_left: usize,
    /// Right vertex count `|U′|`.
    pub n_right: usize,
    /// Label count `|L|`.
    pub n_labels: usize,
    /// Edges `(u, w, R_uw)` with `u ∈ [0, n_left)`, `w ∈ [0, n_right)`.
    pub edges: Vec<LcEdge>,
}

/// A label assignment: per left vertex and per right vertex, the label
/// set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// Labels per left vertex.
    pub left: Vec<BTreeSet<usize>>,
    /// Labels per right vertex.
    pub right: Vec<BTreeSet<usize>>,
}

impl Assignment {
    /// Total cost `Σ_u |A(u)|`.
    #[must_use]
    pub fn cost(&self) -> usize {
        self.left
            .iter()
            .chain(self.right.iter())
            .map(BTreeSet::len)
            .sum()
    }
}

impl LabelCover {
    /// Validates ranges and non-emptiness of relations.
    ///
    /// # Panics
    /// Panics on out-of-range vertices/labels or empty relations.
    #[must_use]
    pub fn new(n_left: usize, n_right: usize, n_labels: usize, edges: Vec<LcEdge>) -> Self {
        for (u, w, rel) in &edges {
            assert!(*u < n_left && *w < n_right, "edge endpoint out of range");
            assert!(!rel.is_empty(), "relations must be non-empty");
            for &(l1, l2) in rel {
                assert!(l1 < n_labels && l2 < n_labels, "label out of range");
            }
        }
        Self {
            n_left,
            n_right,
            n_labels,
            edges,
        }
    }

    /// Whether the assignment satisfies every edge.
    #[must_use]
    pub fn is_feasible(&self, a: &Assignment) -> bool {
        self.edges.iter().all(|(u, w, rel)| {
            rel.iter()
                .any(|&(l1, l2)| a.left[*u].contains(&l1) && a.right[*w].contains(&l2))
        })
    }

    /// Exact minimum assignment by enumerating, per edge, the chosen
    /// satisfying pair (product over edges of `|R_uw|` candidates).
    /// Works for small instances; the candidate count is capped.
    ///
    /// # Panics
    /// Panics if the search space exceeds `2^22` combinations.
    #[must_use]
    pub fn exact(&self) -> Assignment {
        let space: u64 = self.edges.iter().map(|(_, _, r)| r.len() as u64).product();
        assert!(space <= 1 << 22, "label-cover exact search too large");
        let mut best: Option<Assignment> = None;
        let mut choice = vec![0usize; self.edges.len()];
        loop {
            let mut a = Assignment {
                left: vec![BTreeSet::new(); self.n_left],
                right: vec![BTreeSet::new(); self.n_right],
            };
            for (e, &(u, w, ref rel)) in self.edges.iter().enumerate() {
                let (l1, l2) = rel[choice[e]];
                a.left[u].insert(l1);
                a.right[w].insert(l2);
            }
            if best.as_ref().is_none_or(|b| a.cost() < b.cost()) {
                debug_assert!(self.is_feasible(&a));
                best = Some(a);
            }
            // Next choice vector.
            let mut done = true;
            for (e, c) in choice.iter_mut().enumerate() {
                *c += 1;
                if *c < self.edges[e].2.len() {
                    done = false;
                    break;
                }
                *c = 0;
            }
            if done {
                break;
            }
        }
        best.expect("relations are non-empty, so a feasible assignment exists")
    }

    /// Greedy heuristic: per edge, pick the pair whose labels are
    /// already most covered.
    #[must_use]
    pub fn greedy(&self) -> Assignment {
        let mut a = Assignment {
            left: vec![BTreeSet::new(); self.n_left],
            right: vec![BTreeSet::new(); self.n_right],
        };
        for (u, w, rel) in &self.edges {
            let best = rel
                .iter()
                .max_by_key(|&&(l1, l2)| {
                    usize::from(a.left[*u].contains(&l1)) + usize::from(a.right[*w].contains(&l2))
                })
                .expect("non-empty relation");
            a.left[*u].insert(best.0);
            a.right[*w].insert(best.1);
        }
        debug_assert!(self.is_feasible(&a));
        a
    }

    /// Random instance: complete-ish bipartite graph with `rel_size`
    /// random pairs per edge.
    pub fn random<R: Rng>(
        rng: &mut R,
        n_left: usize,
        n_right: usize,
        n_labels: usize,
        edge_prob: f64,
        rel_size: usize,
    ) -> Self {
        let mut edges = Vec::new();
        for u in 0..n_left {
            for w in 0..n_right {
                // Guarantee every left vertex has at least one edge so
                // the instance is non-trivial.
                if rng.gen_bool(edge_prob) || w == u % n_right {
                    let mut rel = BTreeSet::new();
                    while rel.len() < rel_size {
                        rel.insert((rng.gen_range(0..n_labels), rng.gen_range(0..n_labels)));
                    }
                    edges.push((u, w, rel.into_iter().collect()));
                }
            }
        }
        Self::new(n_left, n_right, n_labels, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small() -> LabelCover {
        // Two edges sharing the left vertex 0; both satisfiable with
        // label 0 on the left: optimal cost 3 (0:{0}, right 0:{1},
        // right 1:{0}).
        LabelCover::new(
            1,
            2,
            2,
            vec![(0, 0, vec![(0, 1), (1, 0)]), (0, 1, vec![(0, 0), (1, 1)])],
        )
    }

    #[test]
    fn exact_minimum() {
        let lc = small();
        let a = lc.exact();
        assert!(lc.is_feasible(&a));
        assert_eq!(a.cost(), 3);
    }

    #[test]
    fn greedy_feasible_not_better_than_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let lc = LabelCover::random(&mut rng, 3, 3, 3, 0.4, 2);
            let g = lc.greedy();
            let e = lc.exact();
            assert!(lc.is_feasible(&g));
            assert!(g.cost() >= e.cost());
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_relation_rejected() {
        let _ = LabelCover::new(1, 1, 1, vec![(0, 0, vec![])]);
    }
}
