//! Concurrent ingest property suite: N writer threads hammer disjoint
//! *and* shared tenants through the durable group-commit path while a
//! prober thread reads continuously, then three views of the state
//! must agree — **live ≡ recovered ≡ rebuilt-from-scratch**.
//!
//! What this pins down, at 1/2/4/8 writer threads:
//!
//! * **Equivalence** — after the storm, the live registry's probe
//!   answers and epochs equal (a) a registry recovered from the
//!   durable directory and (b) a fresh in-memory registry re-ingesting
//!   the log's frames in log order. Interleaving across tenants is
//!   schedule-dependent; the *state* each schedule produces is not.
//! * **Epoch monotonicity** — every observation any thread makes of a
//!   tenant's epochs is non-decreasing per module: the seqlock
//!   publication never shows a torn or rewound epoch vector.
//! * **Probes don't block on writers** — the prober makes continuous
//!   progress (epoch snapshots are lock-free; module reads only ever
//!   wait for that module's apply slice, never for an fsync).
//! * **Coalesce accounting** — the lane's `frames_synced == fsyncs +
//!   coalesced` identity holds under arbitrary interleaving, and every
//!   submitted frame is acked durable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use sv_core::safety::{IngestBatch, ProbeRequest};
use sv_durable::{DurableRegistry, Record, TenantDef, LOG_FILE};
use sv_relation::{AttrSet, Tuple};
use sv_serve::{AdmissionLimits, Tenant, TenantConfig, TenantId, TenantRegistry};
use sv_workflow::library::one_one_chain;
use sv_workflow::Workflow;

const CHAIN_WIRES: usize = 4;
const FRAMES_PER_THREAD: usize = 24;
const SHARED: [TenantId; 2] = [TenantId(1), TenantId(2)];

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sv-par-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn chain_row(wf: &Workflow, bits: u32) -> Tuple {
    let input: Vec<u32> = (0..CHAIN_WIRES).map(|w| (bits >> w) & 1).collect();
    wf.run(&input).expect("chain accepts all boolean inputs")
}

fn epochs_of(t: &Arc<Tenant>) -> Vec<u64> {
    t.epochs().iter().map(|me| me.epoch).collect()
}

fn probe_mix(t: &Arc<Tenant>) -> Vec<ProbeRequest> {
    let modules: Vec<_> = {
        let guard = t.oracles();
        guard.iter().map(|(id, _)| id).collect()
    };
    let mut probes = Vec::new();
    for &m in &modules {
        for word in [0b0u64, 0b1, 0b101, 0b1111] {
            for gamma in [1u128, 2, 8] {
                probes.push(ProbeRequest::new(m, AttrSet::from_word(word), gamma));
            }
        }
    }
    probes
}

/// Asserts that two tenants answer the probe mix identically.
fn assert_same_answers(a: &Arc<Tenant>, b: &Arc<Tenant>, context: &str) {
    let probes = probe_mix(a);
    let out_a = a.oracles().probe_batch(&probes).expect("probes on a");
    let out_b = b.oracles().probe_batch(&probes).expect("probes on b");
    assert_eq!(out_a.len(), out_b.len(), "{context}");
    for (x, y) in out_a.iter().zip(&out_b) {
        assert_eq!(x.module, y.module, "{context}");
        assert_eq!(x.safe, y.safe, "{context}: module {:?}", x.module);
    }
}

fn scenario(threads: usize) {
    let dir = tmp_dir(&format!("t{threads}"));
    let wf = one_one_chain(2, CHAIN_WIRES);
    let reg = Arc::new(DurableRegistry::create(&dir).expect("create"));
    reg.set_commit_window(Duration::from_micros(200));
    let mut tenant_ids: Vec<TenantId> = SHARED.to_vec();
    for t in 0..threads {
        tenant_ids.push(TenantId(100 + t as u64));
    }
    for &tid in &tenant_ids {
        reg.register(tid, TenantConfig::new(&wf)).expect("register");
    }

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        // The prober: continuous epoch snapshots and probe batches
        // while writers are appending. Asserts per-module epoch
        // monotonicity on every observation and must make progress
        // (probes never wait behind an fsync or another module's
        // apply).
        let prober = {
            let reg = Arc::clone(&reg);
            let stop = &stop;
            let tenant_ids = tenant_ids.clone();
            s.spawn(move || {
                let mut last: HashMap<u64, Vec<u64>> = HashMap::new();
                let mut rounds = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for &tid in &tenant_ids {
                        let t = reg.tenant(tid).expect("registered");
                        let now = epochs_of(&t);
                        if let Some(prev) = last.get(&tid.0) {
                            for (p, n) in prev.iter().zip(&now) {
                                assert!(n >= p, "epoch rewound on tenant {tid:?}");
                            }
                        }
                        last.insert(tid.0, now);
                        let probes = probe_mix(&t);
                        let out = t.oracles().probe_batch(&probes).expect("probe");
                        assert_eq!(out.len(), probes.len());
                    }
                    rounds += 1;
                }
                rounds
            })
        };
        // Writers: each owns one disjoint tenant and shares two more
        // with every other writer. Frames of 1–2 valid/duplicate rows
        // through the full submit + wait_durable path.
        let mut writers = Vec::new();
        for w in 0..threads {
            let reg = Arc::clone(&reg);
            let wf = &wf;
            writers.push(s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ (w as u64) << 8);
                let own = TenantId(100 + w as u64);
                for _ in 0..FRAMES_PER_THREAD {
                    let tid = match rng.gen_range(0..4u32) {
                        0 | 1 => own,
                        2 => SHARED[0],
                        _ => SHARED[1],
                    };
                    let nrows = rng.gen_range(1..=2usize);
                    let rows: Vec<Tuple> = (0..nrows)
                        .map(|_| chain_row(wf, rng.gen_range(0..1u32 << CHAIN_WIRES)))
                        .collect();
                    reg.ingest(tid, &rows).expect("valid frames always land");
                }
            }));
        }
        for h in writers {
            h.join().expect("writer");
        }
        stop.store(true, Ordering::Relaxed);
        let rounds = prober.join().expect("prober");
        assert!(rounds > 0, "prober made no progress");
    });

    // Every frame was acked durable, and the coalesce accounting is
    // exact under arbitrary interleaving.
    let stats = reg.lane_stats();
    assert_eq!(stats.frames, (threads * FRAMES_PER_THREAD) as u64);
    assert_eq!(stats.frames_synced, stats.frames, "every frame acked");
    assert_eq!(
        stats.frames_synced,
        stats.fsyncs + stats.coalesced,
        "coalesce identity"
    );

    // Rebuild from scratch: a fresh in-memory registry re-ingesting
    // the log's frames in log order must answer identically — the
    // schedule's interleaving is fully captured by the log.
    let (records, tail, _) = sv_durable::read_log(&dir.join(LOG_FILE)).expect("read log");
    assert!(tail.is_clean());
    let fresh = TenantRegistry::new();
    for &tid in &tenant_ids {
        fresh
            .create(tid, TenantConfig::new(&wf).streaming(true))
            .expect("fresh register");
    }
    for r in &records {
        if let Record::IngestFrame { tenant, rows, .. } = r {
            let t = fresh.get(TenantId(*tenant)).expect("fresh tenant");
            let batch = IngestBatch::new(rows.iter().cloned().map(Tuple::new).collect());
            t.ingest_batch(&batch).expect("logged frames re-apply");
        }
    }
    for &tid in &tenant_ids {
        let live = reg.tenant(tid).expect("live tenant");
        let rebuilt = fresh.get(tid).expect("rebuilt tenant");
        assert_eq!(
            epochs_of(&live),
            epochs_of(&rebuilt),
            "threads {threads}: rebuilt epochs for {tid:?}"
        );
        assert_same_answers(
            &live,
            &rebuilt,
            &format!("threads {threads} rebuilt {tid:?}"),
        );
    }

    // Recover from disk: same state again.
    let live_epochs: Vec<Vec<u64>> = tenant_ids
        .iter()
        .map(|&tid| epochs_of(&reg.tenant(tid).unwrap()))
        .collect();
    let defs: Vec<TenantDef<'_>> = tenant_ids
        .iter()
        .map(|&id| TenantDef {
            id,
            workflow: &wf,
            limits: AdmissionLimits::default(),
        })
        .collect();
    let (rec, report) = DurableRegistry::recover(&dir, &defs).expect("recover");
    assert!(report.tail.is_clean());
    assert_eq!(report.rows_rejected, 0, "frame logs never re-reject");
    for (i, &tid) in tenant_ids.iter().enumerate() {
        let live = reg.tenant(tid).expect("live tenant");
        let recovered = rec.tenant(tid).expect("recovered tenant");
        assert_eq!(
            epochs_of(&recovered),
            live_epochs[i],
            "threads {threads}: recovered epochs for {tid:?}"
        );
        assert_same_answers(
            &live,
            &recovered,
            &format!("threads {threads} recovered {tid:?}"),
        );
    }
    drop(rec);
    drop(reg);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn one_writer() {
    scenario(1);
}

#[test]
fn two_writers() {
    scenario(2);
}

#[test]
fn four_writers() {
    scenario(4);
}

#[test]
fn eight_writers() {
    scenario(8);
}
