//! Crash-fault property suite: the durable log + snapshot + replay
//! machinery reaches **exactly** the state of the uninterrupted run, at
//! every possible crash point.
//!
//! The method: run a random ingest schedule one frame at a time
//! (frames of 1–3 rows, submitted through the **pipelined** group
//! commit path so one fsync covers several frames), recording after
//! each frame a *checkpoint* — the log's byte length plus every
//! tenant's expected ledger length and relation epochs (captured from
//! the live tenant, so compaction bumps are included). Durable state
//! at any moment is (snapshot ∪ valid log prefix), so:
//!
//! * **Truncation sweep** — for *every* byte position `c` of the final
//!   log (record boundaries *and* mid-record, which with multi-row
//!   frame records means cuts through the middle of coalesced
//!   batches), recovery from the truncated image must reproduce the
//!   checkpoint of the longest record prefix that survives, joined
//!   with the snapshot's anchor — a torn frame rolls back **whole**,
//!   never row by row.
//! * **Corruption sweep** — flipping any bit of any record must come
//!   back as a typed [`LogTail::Corrupt`]/[`LogTail::Torn`] (never a
//!   panic, never a silently wrong state), with recovery landing on
//!   the checkpoint of the surviving prefix.
//! * **Equivalence** — a recovered tenant's probe answers must equal a
//!   registry rebuilt from scratch by re-ingesting the expected ledger,
//!   and both must equal the row-at-a-time reference semantics
//!   ([`NaiveOracle`]) on the same module rows.
//!
//! Schedules include valid rows, duplicate rows (applied, no epoch
//! bump), FD-violating rows (which reject their **whole frame** before
//! it reaches the log — frame-atomic ingest), snapshots at random
//! points, and compactions (which rewrite the log and strictly advance
//! every epoch).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use sv_core::safety::{IngestBatch, NaiveOracle, ProbeRequest, SafetyOracle};
use sv_durable::{DurableRegistry, LogTail, TenantDef, LOG_FILE, SNAPSHOT_FILE};
use sv_relation::{AttrSet, Tuple};
use sv_serve::{AdmissionLimits, Tenant, TenantConfig, TenantId, TenantRegistry};
use sv_workflow::library::{fig1_workflow, one_one_chain};
use sv_workflow::Workflow;

const CHAIN_WIRES: usize = 4;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sv-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The two workflows under test: a 2-module boolean chain and the
/// paper's Figure-1 workflow.
fn workflows() -> (Workflow, Workflow) {
    (one_one_chain(2, CHAIN_WIRES), fig1_workflow())
}

fn chain_row(wf: &Workflow, bits: u32) -> Tuple {
    let input: Vec<u32> = (0..CHAIN_WIRES).map(|w| (bits >> w) & 1).collect();
    wf.run(&input).expect("chain accepts all boolean inputs")
}

fn fig1_row(wf: &Workflow, bits: u32) -> Tuple {
    wf.run(&[bits & 1, (bits >> 1) & 1])
        .expect("fig1 accepts boolean inputs")
}

/// Expected state of one tenant at a checkpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
struct ExpectedTenant {
    ledger_len: usize,
    epochs: Vec<u64>,
}

/// A durable checkpoint: everything a crash at `log_bytes` (or later,
/// before the next record) must recover to.
#[derive(Clone, Debug)]
struct Checkpoint {
    log_bytes: u64,
    tenants: Vec<ExpectedTenant>, // indexed like `TENANTS`
}

const TENANTS: [TenantId; 2] = [TenantId(11), TenantId(22)];

fn epochs_of(t: &Arc<Tenant>) -> Vec<u64> {
    t.epochs().iter().map(|me| me.epoch).collect()
}

fn defs<'a>(chain: &'a Workflow, fig1: &'a Workflow) -> Vec<TenantDef<'a>> {
    vec![
        TenantDef {
            id: TENANTS[0],
            workflow: chain,
            limits: AdmissionLimits::default(),
        },
        TenantDef {
            id: TENANTS[1],
            workflow: fig1,
            limits: AdmissionLimits::default(),
        },
    ]
}

/// A probe mix spanning both tenants' modules: visible-set words and Γ
/// values chosen to straddle safe/unsafe boundaries.
fn probe_mix(t: &Arc<Tenant>) -> Vec<ProbeRequest> {
    let modules: Vec<_> = {
        let guard = t.oracles();
        guard.iter().map(|(id, _)| id).collect()
    };
    let mut probes = Vec::new();
    for &m in &modules {
        for word in [0b0u64, 0b1, 0b11, 0b101, 0b1110, 0b11111] {
            for gamma in [1u128, 2, 4, 8] {
                probes.push(ProbeRequest::new(m, AttrSet::from_word(word), gamma));
            }
        }
    }
    probes
}

/// Rebuilds the expected state from scratch (fresh in-memory registry,
/// re-ingesting the expected ledger prefix) and asserts the recovered
/// registry matches it: same epochs as the live run recorded, same
/// probe answers as the rebuild, and reference-equal privacy levels.
fn assert_state_matches(
    rec: &DurableRegistry,
    expected: &[ExpectedTenant],
    ledgers: &[Vec<Tuple>],
    chain: &Workflow,
    fig1: &Workflow,
    check_reference: bool,
    context: &str,
) {
    let fresh = TenantRegistry::new();
    for (i, &tid) in TENANTS.iter().enumerate() {
        let wf = if i == 0 { chain } else { fig1 };
        let ft = fresh
            .create(tid, TenantConfig::new(wf).streaming(true))
            .expect("fresh registration");
        for row in &ledgers[i][..expected[i].ledger_len] {
            ft.ingest_rows(std::slice::from_ref(row))
                .expect("expected ledger rows re-apply cleanly");
        }
        let rt = rec.tenant(tid).expect("recovered tenant");
        assert_eq!(
            rec.ledger_len(tid),
            Some(expected[i].ledger_len),
            "{context}: tenant {tid:?} ledger length"
        );
        assert_eq!(
            epochs_of(&rt),
            expected[i].epochs,
            "{context}: tenant {tid:?} epochs"
        );
        // Probe answers are a pure function of module rows: recovered
        // and rebuilt-from-scratch must agree on every safe/unsafe bit.
        let probes = probe_mix(&rt);
        let rec_out = rt.oracles().probe_batch(&probes).expect("recovered probes");
        let fresh_out = ft.oracles().probe_batch(&probes).expect("fresh probes");
        assert_eq!(rec_out.len(), fresh_out.len());
        for (a, b) in rec_out.iter().zip(&fresh_out) {
            assert_eq!(a.module, b.module, "{context}");
            assert_eq!(
                a.safe, b.safe,
                "{context}: probe divergence on module {:?}",
                a.module
            );
        }
        if check_reference {
            // Reference semantics: the row-at-a-time NaiveOracle over
            // the recovered kernel rows answers identically.
            let guard = rt.oracles();
            for (mid, oracle) in guard.iter() {
                let naive = NaiveOracle::new(oracle.module().clone());
                for word in [0b0u64, 0b1, 0b11, 0b101, 0b1110] {
                    let v = AttrSet::from_word(word);
                    assert_eq!(
                        oracle.privacy_level(&v),
                        naive.privacy_level(&v),
                        "{context}: reference divergence on module {mid:?}, V={word:#b}"
                    );
                }
            }
        }
    }
}

/// One live run: random ingest frames of 1–3 rows (valid, duplicate,
/// FD-violating — an FD row rejects its whole frame before logging)
/// across two tenants, with a snapshot at a random point. Frames go
/// through the **pipelined** group-commit path: `submit` immediately,
/// `wait_durable` only at random points and at the end, so a single
/// fsync covers a coalesced batch of frames — the crash sweeps then
/// cut through the middle of those batches. Returns the per-frame
/// checkpoints, the snapshot's checkpoint index (0 = no snapshot /
/// empty anchor), and the per-tenant full ledgers.
fn run_schedule(
    dir: &Path,
    seed: u64,
    frames: usize,
    snapshot_at: Option<usize>,
) -> (Vec<Checkpoint>, usize, Vec<Vec<Tuple>>) {
    let (chain, fig1) = workflows();
    let reg = DurableRegistry::create(dir).expect("create durable dir");
    for def in defs(&chain, &fig1) {
        reg.register(def.id, TenantConfig::new(def.workflow).limits(def.limits))
            .expect("register");
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ledgers: Vec<Vec<Tuple>> = vec![Vec::new(), Vec::new()];
    let mut checkpoints = vec![Checkpoint {
        log_bytes: 0,
        tenants: TENANTS
            .iter()
            .map(|&tid| ExpectedTenant {
                ledger_len: 0,
                epochs: epochs_of(&reg.tenant(tid).unwrap()),
            })
            .collect(),
    }];
    let mut snap_idx = 0usize;
    let mut unsynced_seq = 0u64;
    for frame in 0..frames {
        if snapshot_at == Some(frame) {
            // Snapshot anchors must not outrun durability.
            reg.wait_durable(unsynced_seq)
                .expect("sync before snapshot");
            reg.snapshot().expect("snapshot");
            snap_idx = checkpoints.len() - 1;
        }
        let ti = rng.gen_range(0..2usize);
        let tid = TENANTS[ti];
        let nrows = rng.gen_range(1..=3usize);
        let rows: Vec<Tuple> = (0..nrows)
            .map(|_| {
                let kind = rng.gen_range(0..10u32);
                if kind < 7 || ledgers[ti].is_empty() {
                    // Valid (possibly duplicate) row.
                    if ti == 0 {
                        chain_row(&chain, rng.gen_range(0..1u32 << CHAIN_WIRES))
                    } else {
                        fig1_row(&fig1, rng.gen_range(0..4u32))
                    }
                } else if kind < 9 {
                    // Exact duplicate of an applied row: applies, adds
                    // nothing.
                    ledgers[ti][rng.gen_range(0..ledgers[ti].len())].clone()
                } else {
                    // FD violation: an applied row with one non-input
                    // value flipped contradicts the recorded execution
                    // — and sinks the whole frame.
                    let mut vals = ledgers[ti][rng.gen_range(0..ledgers[ti].len())]
                        .values()
                        .to_vec();
                    let flip = rng.gen_range(CHAIN_WIRES..vals.len());
                    vals[flip] ^= 1;
                    Tuple::new(vals)
                }
            })
            .collect();
        match reg.submit(tid, &IngestBatch::new(rows.clone())) {
            Ok(outcome) => {
                ledgers[ti].extend(rows);
                unsynced_seq = outcome.log_seq;
            }
            Err(sv_durable::DurableIngestError::Rejected { .. }) => {}
            Err(e) => panic!("unexpected durable failure: {e}"),
        }
        // Group commit: roughly every third frame leads a sync that
        // covers everything submitted since the last one.
        if rng.gen_range(0..3u32) == 0 {
            reg.wait_durable(unsynced_seq).expect("group sync");
        }
        checkpoints.push(Checkpoint {
            log_bytes: reg.log_bytes(),
            tenants: TENANTS
                .iter()
                .enumerate()
                .map(|(i, &t)| ExpectedTenant {
                    ledger_len: ledgers[i].len(),
                    epochs: epochs_of(&reg.tenant(t).unwrap()),
                })
                .collect(),
        });
    }
    reg.wait_durable(unsynced_seq).expect("final sync");
    (checkpoints, snap_idx, ledgers)
}

/// The checkpoint a crash at byte `cut` of the log recovers to: the
/// longest record prefix at or below the cut, joined with the
/// snapshot anchor (durable state is snapshot ∪ log prefix).
fn expected_at_cut(checkpoints: &[Checkpoint], snap_idx: usize, cut: u64) -> &Checkpoint {
    let prefix_idx = checkpoints
        .iter()
        .rposition(|c| c.log_bytes <= cut)
        .expect("checkpoint 0 has log_bytes 0");
    &checkpoints[prefix_idx.max(snap_idx)]
}

/// Recover from a damaged copy of the durable dir and hand back the
/// registry + report.
fn recover_copy(
    src: &Path,
    dst: &Path,
    log_image: &[u8],
    chain: &Workflow,
    fig1: &Workflow,
) -> (DurableRegistry, sv_durable::RecoveryReport) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    std::fs::write(dst.join(LOG_FILE), log_image).unwrap();
    let snap = src.join(SNAPSHOT_FILE);
    if snap.exists() {
        std::fs::copy(&snap, dst.join(SNAPSHOT_FILE)).unwrap();
    }
    DurableRegistry::recover(dst, &defs(chain, fig1)).expect("recovery is total")
}

#[test]
fn truncation_at_every_byte_recovers_the_surviving_prefix() {
    let (chain, fig1) = workflows();
    for (seed, snapshot_at) in [(1u64, None), (2, Some(7)), (3, Some(0))] {
        let dir = tmp_dir(&format!("trunc-{seed}"));
        let (checkpoints, snap_idx, ledgers) = run_schedule(&dir, seed, 14, snapshot_at);
        let log = std::fs::read(dir.join(LOG_FILE)).unwrap();
        assert_eq!(checkpoints.last().unwrap().log_bytes, log.len() as u64);
        let work = tmp_dir(&format!("trunc-work-{seed}"));
        // Every byte position: record boundaries AND mid-record.
        for cut in 0..=log.len() {
            let (rec, report) = recover_copy(&dir, &work, &log[..cut], &chain, &fig1);
            let expected = expected_at_cut(&checkpoints, snap_idx, cut as u64);
            let boundary = checkpoints.iter().any(|c| c.log_bytes == cut as u64);
            assert_eq!(
                report.tail.is_clean(),
                boundary,
                "cut {cut}: tail {:?}",
                report.tail
            );
            // Full equivalence is checked at a sample of cuts (it
            // rebuilds registries); ledger/epoch state at every cut.
            let deep = cut == log.len() || cut % 97 == 0;
            if deep {
                assert_state_matches(
                    &rec,
                    &expected.tenants,
                    &ledgers,
                    &chain,
                    &fig1,
                    cut == log.len(),
                    &format!("seed {seed} cut {cut}"),
                );
            } else {
                for (i, &tid) in TENANTS.iter().enumerate() {
                    assert_eq!(
                        rec.ledger_len(tid),
                        Some(expected.tenants[i].ledger_len),
                        "seed {seed} cut {cut}"
                    );
                    assert_eq!(
                        epochs_of(&rec.tenant(tid).unwrap()),
                        expected.tenants[i].epochs,
                        "seed {seed} cut {cut}"
                    );
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&work).unwrap();
    }
}

#[test]
fn bit_flips_are_typed_faults_and_recover_the_surviving_prefix() {
    let (chain, fig1) = workflows();
    let dir = tmp_dir("flip");
    let (checkpoints, snap_idx, ledgers) = run_schedule(&dir, 42, 10, Some(4));
    let log = std::fs::read(dir.join(LOG_FILE)).unwrap();
    let work = tmp_dir("flip-work");
    let mut rng = StdRng::seed_from_u64(7);
    // Every byte, one random bit each (the full 8× sweep runs at the
    // unit level over raw scans; here each flip pays a full recovery).
    for byte in 0..log.len() {
        let bit = rng.gen_range(0..8u32);
        let mut damaged = log.clone();
        damaged[byte] ^= 1 << bit;
        // The independent scanner tells us how much survives.
        let (_, tail, valid_len) = sv_durable::log::scan(&damaged);
        assert!(
            !tail.is_clean(),
            "flip at byte {byte} bit {bit} went undetected"
        );
        let (rec, report) = recover_copy(&dir, &work, &damaged, &chain, &fig1);
        assert!(matches!(
            report.tail,
            LogTail::Torn { .. } | LogTail::Corrupt { .. }
        ));
        let expected = expected_at_cut(&checkpoints, snap_idx, valid_len);
        for (i, &tid) in TENANTS.iter().enumerate() {
            assert_eq!(
                rec.ledger_len(tid),
                Some(expected.tenants[i].ledger_len),
                "flip {byte}.{bit}"
            );
            assert_eq!(
                epochs_of(&rec.tenant(tid).unwrap()),
                expected.tenants[i].epochs,
                "flip {byte}.{bit}"
            );
        }
        let _ = ledgers; // full equivalence covered by the truncation sweep
    }
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&work).unwrap();
}

#[test]
fn compaction_crash_points_recover_exactly() {
    let (chain, fig1) = workflows();
    for seed in [5u64, 6] {
        let dir = tmp_dir(&format!("compact-{seed}"));
        // Phase 1: random schedule, then compact tenant 0 (rewrites the
        // log, snapshots, bumps every epoch), then more ingest.
        let (_, _, mut ledgers) = run_schedule(&dir, seed, 12, None);
        let reg = {
            let (reg, report) =
                DurableRegistry::recover(&dir, &defs(&chain, &fig1)).expect("reload");
            assert!(report.tail.is_clean());
            reg
        };
        reg.compact(TENANTS[0]).expect("compact");
        // Checkpoint stream restarts on the rewritten log: the old
        // byte offsets are gone with the old log image.
        let mut checkpoints = vec![Checkpoint {
            log_bytes: reg.log_bytes(),
            tenants: TENANTS
                .iter()
                .enumerate()
                .map(|(i, &t)| ExpectedTenant {
                    ledger_len: ledgers[i].len(),
                    epochs: epochs_of(&reg.tenant(t).unwrap()),
                })
                .collect(),
        }];
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
        for _ in 0..6 {
            let ti = rng.gen_range(0..2usize);
            let row = if ti == 0 {
                chain_row(&chain, rng.gen_range(0..1u32 << CHAIN_WIRES))
            } else {
                fig1_row(&fig1, rng.gen_range(0..4u32))
            };
            if reg.ingest(TENANTS[ti], std::slice::from_ref(&row)).is_ok() {
                ledgers[ti].push(row);
            }
            checkpoints.push(Checkpoint {
                log_bytes: reg.log_bytes(),
                tenants: TENANTS
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| ExpectedTenant {
                        ledger_len: ledgers[i].len(),
                        epochs: epochs_of(&reg.tenant(t).unwrap()),
                    })
                    .collect(),
            });
        }
        drop(reg);
        // The post-compaction log is the durable artifact; crash it at
        // every byte. The snapshot (written by compact) anchors
        // everything up to the compaction point.
        let log = std::fs::read(dir.join(LOG_FILE)).unwrap();
        let base = checkpoints[0].log_bytes;
        let work = tmp_dir(&format!("compact-work-{seed}"));
        for cut in 0..=log.len() {
            // Bytes below the post-compaction base hold records the
            // snapshot already covers (other-tenant prefix rows kept by
            // the rewrite): cutting inside them recovers the anchor.
            let (rec, _report) = recover_copy(&dir, &work, &log[..cut], &chain, &fig1);
            let expected = if (cut as u64) < base {
                &checkpoints[0]
            } else {
                expected_at_cut(&checkpoints, 0, cut as u64)
            };
            let deep = cut == log.len() || cut % 61 == 0;
            if deep {
                assert_state_matches(
                    &rec,
                    &expected.tenants,
                    &ledgers,
                    &chain,
                    &fig1,
                    cut == log.len(),
                    &format!("compact seed {seed} cut {cut}"),
                );
            } else {
                for (i, &tid) in TENANTS.iter().enumerate() {
                    assert_eq!(
                        rec.ledger_len(tid),
                        Some(expected.tenants[i].ledger_len),
                        "compact seed {seed} cut {cut}"
                    );
                    assert_eq!(
                        epochs_of(&rec.tenant(tid).unwrap()),
                        expected.tenants[i].epochs,
                        "compact seed {seed} cut {cut}"
                    );
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&work).unwrap();
    }
}

#[test]
fn random_schedules_with_snapshots_recover_bit_for_bit() {
    let (chain, fig1) = workflows();
    for seed in 100..108u64 {
        let dir = tmp_dir(&format!("sched-{seed}"));
        let snapshot_at = if seed % 2 == 0 {
            Some((seed as usize) % 12)
        } else {
            None
        };
        let (checkpoints, snap_idx, ledgers) = run_schedule(&dir, seed, 16, snapshot_at);
        let log = std::fs::read(dir.join(LOG_FILE)).unwrap();
        let work = tmp_dir(&format!("sched-work-{seed}"));
        // Crash exactly at each record boundary (the per-byte sweep is
        // the dedicated test above); full-state equivalence each time.
        for (idx, cp) in checkpoints.iter().enumerate() {
            let cut = cp.log_bytes as usize;
            let (rec, report) = recover_copy(&dir, &work, &log[..cut], &chain, &fig1);
            assert!(report.tail.is_clean(), "seed {seed} boundary {idx}");
            let expected = expected_at_cut(&checkpoints, snap_idx, cp.log_bytes);
            assert_state_matches(
                &rec,
                &expected.tenants,
                &ledgers,
                &chain,
                &fig1,
                idx == checkpoints.len() - 1,
                &format!("seed {seed} boundary {idx}"),
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&work).unwrap();
    }
}
