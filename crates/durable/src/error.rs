//! Error and log-tail types for the durability layer.

use std::fmt;
use std::path::PathBuf;
use sv_core::CoreError;
use sv_serve::ServeError;

/// Where a log scan stopped. A log file is a sequence of checksummed
/// records; the scanner accepts the longest valid prefix and reports
/// what ended it. **Every** byte-level fault — a torn write at the
/// tail, a flipped bit anywhere, a truncated header — lands in one of
/// these variants; the scanner never panics and never yields a record
/// that fails its checksum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogTail {
    /// The file ends exactly at a record boundary.
    Clean,
    /// The file ends mid-record (an interrupted append): the header or
    /// payload is incomplete but everything present is consistent.
    Torn {
        /// Byte offset of the incomplete record.
        offset: u64,
    },
    /// A structurally complete record fails validation (checksum
    /// mismatch, oversized length prefix, unknown tag, malformed
    /// body) — bytes were damaged, not merely cut short.
    Corrupt {
        /// Byte offset of the damaged record.
        offset: u64,
    },
}

impl LogTail {
    /// Whether the scan consumed the whole file.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        matches!(self, Self::Clean)
    }
}

impl fmt::Display for LogTail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Clean => write!(f, "clean"),
            Self::Torn { offset } => write!(f, "torn record at byte {offset}"),
            Self::Corrupt { offset } => write!(f, "corrupt record at byte {offset}"),
        }
    }
}

/// Failures of the durability layer. IO problems carry the operation
/// and path; consistency problems (a snapshot that does not match the
/// supplied workflow definitions, a log referencing an unregistered
/// tenant) are typed so recovery refuses to build a wrong state
/// silently.
#[derive(Debug)]
pub enum DurableError {
    /// A filesystem operation failed.
    Io {
        /// What was being attempted (e.g. `"append"`, `"rename"`).
        op: &'static str,
        /// The file involved.
        path: PathBuf,
        /// The underlying `std::io` error, rendered.
        detail: String,
    },
    /// An encoder was handed a record beyond [`crate::log::MAX_RECORD_LEN`].
    RecordTooLarge {
        /// The oversized payload length.
        len: usize,
        /// The maximum.
        max: usize,
    },
    /// A snapshot file failed validation (checksum, magic, structure).
    SnapshotCorrupt {
        /// Byte offset of the damage.
        offset: u64,
        /// What failed.
        detail: String,
    },
    /// Durable state and the supplied tenant definitions disagree — a
    /// snapshot or log names a tenant/module/schema the definitions do
    /// not provide (or vice versa). Recovery stops rather than build a
    /// partial registry.
    DefMismatch {
        /// What disagreed.
        detail: String,
    },
    /// A tenant id is not registered with the durable registry.
    UnknownTenant {
        /// The offending tenant id.
        tenant: u64,
    },
    /// A serving-tier operation failed (registration, duplicate id).
    Serve(ServeError),
    /// A core-layer operation failed (module reconstruction).
    Core(CoreError),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { op, path, detail } => {
                write!(f, "{op} on {}: {detail}", path.display())
            }
            Self::RecordTooLarge { len, max } => {
                write!(f, "record payload of {len} bytes exceeds maximum {max}")
            }
            Self::SnapshotCorrupt { offset, detail } => {
                write!(f, "snapshot corrupt at byte {offset}: {detail}")
            }
            Self::DefMismatch { detail } => {
                write!(
                    f,
                    "durable state does not match tenant definitions: {detail}"
                )
            }
            Self::UnknownTenant { tenant } => {
                write!(
                    f,
                    "tenant {tenant} is not registered with the durable registry"
                )
            }
            Self::Serve(e) => write!(f, "serving tier: {e}"),
            Self::Core(e) => write!(f, "core layer: {e}"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Serve(e) => Some(e),
            Self::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServeError> for DurableError {
    fn from(e: ServeError) -> Self {
        Self::Serve(e)
    }
}

impl From<CoreError> for DurableError {
    fn from(e: CoreError) -> Self {
        Self::Core(e)
    }
}

impl DurableError {
    /// Wraps a `std::io` failure with its operation and path.
    pub(crate) fn io(op: &'static str, path: &std::path::Path, e: &std::io::Error) -> Self {
        Self::Io {
            op,
            path: path.to_path_buf(),
            detail: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(LogTail::Clean.to_string(), "clean");
        assert!(LogTail::Torn { offset: 7 }.to_string().contains("byte 7"));
        assert!(LogTail::Corrupt { offset: 9 }
            .to_string()
            .contains("byte 9"));
        let e = DurableError::RecordTooLarge { len: 10, max: 5 };
        assert!(e.to_string().contains("10"));
        let e = DurableError::UnknownTenant { tenant: 3 };
        assert!(e.to_string().contains("tenant 3"));
        let e: DurableError = CoreError::NotAFunction.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
