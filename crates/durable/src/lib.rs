//! **sv-durable** — durability for the provenance-privacy serving
//! tier: a write-ahead log, snapshots, retention, and crash recovery.
//!
//! The serving tier (`sv-serve`) keeps every tenant's provenance in
//! memory; this crate makes ingest survive a crash. Four pieces:
//!
//! * [`log`] — a length-prefixed, FNV-1a-checksummed record log with a
//!   **total** scanner: a torn or bit-flipped tail is a typed
//!   [`LogTail`], never a panic, and the valid prefix always survives.
//!   One ingest frame is one record, so frames are atomic on disk;
//! * [`lane`] — [`CommitLane`], leader/follower **group commit**:
//!   appends never fsync, waiters coalesce onto one flush (the leader
//!   syncs a cloned handle outside the lane mutex, so appenders are
//!   never blocked by the disk), and acks release only after the
//!   covering sync;
//! * [`snapshot`] — an atomic point-in-time serialization of every
//!   tenant's applied-row ledger, module epochs, and retention
//!   generation;
//! * [`registry`] — [`DurableRegistry`], wrapping the serving tier's
//!   `TenantRegistry` so each ingest frame is validated, logged, then
//!   applied — all-or-nothing — with recovery = snapshot load +
//!   log-tail replay reaching the exact same interned-kernel state and
//!   epochs as the uninterrupted run (proved by `tests/crash_prop.rs`,
//!   which cuts and corrupts the log at every byte — including through
//!   the middle of coalesced batches — and replays).
//!
//! Retention: [`DurableRegistry::compact`] rebuilds a tenant from its
//! ledger with every relation epoch strictly advanced (so
//! epoch-conditioned clients observe `StaleEpoch`, and memos are
//! rebuilt cold), snapshots, and rewrites the log without the
//! superseded prefix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod lane;
pub mod log;
pub mod registry;
pub mod snapshot;

pub use error::{DurableError, LogTail};
pub use lane::{CommitLane, LaneStats};
pub use log::{fnv1a64, read_log, LogWriter, Record, MAX_RECORD_LEN, RECORD_HEADER_LEN};
pub use registry::{
    DurableIngestError, DurableRegistry, RecoveryReport, TenantDef, LOG_FILE, SNAPSHOT_FILE,
};
pub use snapshot::{Snapshot, TenantSnapshot};
