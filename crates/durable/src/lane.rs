//! The commit lane: group commit for the write-ahead log.
//!
//! Appends from many tenants interleave on one [`LogWriter`]; syncs
//! are **coalesced** — when several frames are waiting for durability,
//! one `fsync` covers them all:
//!
//! * [`CommitLane::append_frame`] takes the lane mutex just long
//!   enough to write the frame's bytes and assign its sequence number.
//!   No fsync happens here, so concurrent appenders queue behind a
//!   memcpy, not a disk flush.
//! * [`CommitLane::wait_durable`] blocks until the frame's sequence is
//!   covered by a sync. The first waiter to find no sync in flight
//!   becomes the **leader**: it optionally sleeps the configured
//!   commit window (letting more appends pile in), notes the log's
//!   current tail as its target, and fsyncs a *cloned* file handle
//!   **outside** the lane mutex — appenders are never blocked by the
//!   flush. Everyone whose sequence the target covers is released by
//!   one notify; latecomers either ride the next leader or find their
//!   sequence already durable ("sync absorption").
//!
//! Even with a zero window the lane coalesces under concurrency: while
//! the leader is inside `fsync`, new appends land and their waiters
//! park as followers; the *next* leader's target covers all of them
//! with a single flush. The window only trades a bounded latency for a
//! higher coalesce ratio at low concurrency.
//!
//! An fsync failure releases the cohort with an error to the leader;
//! followers re-elect and retry, so one transient failure never
//! strands waiters. A frame is acknowledged durable **only** after a
//! successful sync whose target covers it.

use crate::error::DurableError;
use crate::log::LogWriter;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;
use sv_relation::Value;

/// Counters exposed by the lane, for benchmarks and gates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Frames appended to the log through the lane.
    pub frames: u64,
    /// Successful `fsync` calls issued by leaders.
    pub fsyncs: u64,
    /// Frames made durable by a sync they did not lead: the invariant
    /// `frames_synced == fsyncs + coalesced` always holds, so a
    /// coalesce ratio of `frames / fsyncs` is exact, not sampled.
    pub coalesced: u64,
    /// Frames covered by a successful sync so far.
    pub frames_synced: u64,
}

struct LaneInner {
    log: LogWriter,
    /// Highest sequence covered by a successful sync.
    durable_seq: u64,
    /// Whether a leader currently holds the sync duty.
    syncing: bool,
    /// Frames appended since the last successful sync target capture.
    pending_frames: u64,
    stats: LaneStats,
}

/// A [`LogWriter`] behind a mutex + condvar implementing leader/
/// follower group commit. See the module docs for the protocol.
pub struct CommitLane {
    inner: Mutex<LaneInner>,
    synced: Condvar,
    /// Commit window in nanoseconds: how long a leader waits for more
    /// appends before capturing its sync target. Zero = sync eagerly.
    window_nanos: AtomicU64,
}

impl CommitLane {
    /// Wraps a log writer with a zero commit window. Records the
    /// writer already holds (a recovered log) count as durable — they
    /// were read back from stable storage.
    #[must_use]
    pub fn new(log: LogWriter) -> Self {
        let durable_seq = log.last_seq();
        Self {
            inner: Mutex::new(LaneInner {
                log,
                durable_seq,
                syncing: false,
                pending_frames: 0,
                stats: LaneStats::default(),
            }),
            synced: Condvar::new(),
            window_nanos: AtomicU64::new(0),
        }
    }

    /// Sets the commit window: a leader waits up to this long for more
    /// appends to join its sync. Zero (the default) syncs eagerly —
    /// coalescing then comes only from syncs already in flight.
    pub fn set_window(&self, window: Duration) {
        let nanos = u64::try_from(window.as_nanos()).unwrap_or(u64::MAX);
        self.window_nanos.store(nanos, Ordering::Relaxed);
    }

    /// The configured commit window.
    #[must_use]
    pub fn window(&self) -> Duration {
        Duration::from_nanos(self.window_nanos.load(Ordering::Relaxed))
    }

    fn lock(&self) -> MutexGuard<'_, LaneInner> {
        self.inner.lock().expect("commit lane poisoned")
    }

    /// Appends one ingest frame (no sync), returning its sequence
    /// number. The caller owns ordering above this lane: per-tenant
    /// frame order is the caller's single-writer discipline; the lane
    /// only interleaves *across* tenants.
    ///
    /// # Errors
    /// IO failures; [`DurableError::RecordTooLarge`].
    pub fn append_frame(&self, tenant: u64, rows: &[Vec<Value>]) -> Result<u64, DurableError> {
        let mut g = self.lock();
        let seq = g.log.append_frame(tenant, rows)?;
        g.pending_frames += 1;
        g.stats.frames += 1;
        Ok(seq)
    }

    /// Blocks until `seq` is covered by a successful sync, returning
    /// the covering durable sequence (`>= seq`). `seq == 0` asks for
    /// "whatever is durable now" and never syncs.
    ///
    /// # Errors
    /// IO failures from the fsync this caller led. Followers of a
    /// failed sync re-elect a leader and retry rather than erroring.
    pub fn wait_durable(&self, seq: u64) -> Result<u64, DurableError> {
        let mut g = self.lock();
        loop {
            if g.durable_seq >= seq {
                return Ok(g.durable_seq);
            }
            if g.syncing {
                // Follower: a leader's fsync is in flight. Park; its
                // target may already cover us.
                g = self.synced.wait(g).expect("commit lane poisoned");
                continue;
            }
            // Leader: optionally hold the door open, then flush.
            g.syncing = true;
            let window = self.window();
            if !window.is_zero() {
                // A timed park with the lock released — appenders keep
                // landing frames meanwhile. Spurious wakeups only
                // shorten the window, never break correctness.
                let (g2, _) = self
                    .synced
                    .wait_timeout(g, window)
                    .expect("commit lane poisoned");
                g = g2;
            }
            let target = g.log.last_seq();
            let batch = std::mem::take(&mut g.pending_frames);
            let file = match g.log.clone_handle() {
                Ok(f) => f,
                Err(e) => {
                    g.syncing = false;
                    g.pending_frames = batch;
                    self.synced.notify_all();
                    return Err(e);
                }
            };
            drop(g);
            // The flush itself: no lane lock held, so appends proceed.
            let flushed = file.sync_data();
            g = self.lock();
            g.syncing = false;
            match flushed {
                Ok(()) => {
                    g.durable_seq = g.durable_seq.max(target);
                    g.stats.fsyncs += 1;
                    g.stats.frames_synced += batch;
                    g.stats.coalesced += batch.saturating_sub(1);
                    self.synced.notify_all();
                    // Loop: our own append preceded this sync, so the
                    // target covers `seq` and the next pass returns.
                }
                Err(e) => {
                    g.pending_frames += batch;
                    self.synced.notify_all();
                    return Err(DurableError::io("group commit fsync", g.log.path(), &e));
                }
            }
        }
    }

    /// Lane counters (frames, fsyncs, coalesced).
    #[must_use]
    pub fn stats(&self) -> LaneStats {
        self.lock().stats
    }

    /// Highest sequence covered by a successful sync.
    #[must_use]
    pub fn durable_seq(&self) -> u64 {
        self.lock().durable_seq
    }

    /// Runs `f` with exclusive access to the underlying log writer —
    /// the registry's control plane (snapshot anchors, compaction
    /// rewrites) goes through here. Callers must not assume anything
    /// about sync state; ingest must be quiesced (the registry's
    /// control lock) before rewriting.
    pub fn with_log<R>(&self, f: impl FnOnce(&mut LogWriter) -> R) -> R {
        f(&mut self.lock().log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn tmp_lane(tag: &str) -> (CommitLane, PathBuf) {
        let dir = std::env::temp_dir().join(format!("sv-lane-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let log = LogWriter::create(&dir.join("wal.log")).unwrap();
        (CommitLane::new(log), dir)
    }

    #[test]
    fn pipelined_appends_share_one_fsync() {
        let (lane, dir) = tmp_lane("pipeline");
        let mut last = 0;
        for i in 0..16 {
            last = lane.append_frame(1, &[vec![i, 1]]).unwrap();
        }
        let durable = lane.wait_durable(last).unwrap();
        assert!(durable >= last);
        let stats = lane.stats();
        assert_eq!(stats.frames, 16);
        assert_eq!(stats.fsyncs, 1, "one flush covers the whole pipeline");
        assert_eq!(stats.coalesced, 15);
        assert_eq!(stats.frames_synced, stats.fsyncs + stats.coalesced);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn per_frame_waits_cost_one_fsync_each() {
        let (lane, dir) = tmp_lane("perframe");
        for i in 0..8 {
            let seq = lane.append_frame(1, &[vec![i, 0]]).unwrap();
            lane.wait_durable(seq).unwrap();
        }
        let stats = lane.stats();
        assert_eq!(stats.frames, 8);
        assert_eq!(stats.fsyncs, 8, "serial waiters cannot coalesce");
        assert_eq!(stats.coalesced, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn absorbed_waiters_do_not_resync() {
        let (lane, dir) = tmp_lane("absorb");
        let a = lane.append_frame(1, &[vec![1]]).unwrap();
        let b = lane.append_frame(2, &[vec![2]]).unwrap();
        lane.wait_durable(b).unwrap();
        let before = lane.stats().fsyncs;
        // `a` was covered by `b`'s sync: no new flush.
        lane.wait_durable(a).unwrap();
        assert_eq!(lane.stats().fsyncs, before);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_waiters_all_release_and_identity_holds() {
        let (lane, dir) = tmp_lane("conc");
        let lane = Arc::new(lane);
        lane.set_window(Duration::from_millis(1));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let lane = Arc::clone(&lane);
                s.spawn(move || {
                    for i in 0..32 {
                        let seq = lane
                            .append_frame(t, &[vec![u32::try_from(i).unwrap(), 1]])
                            .unwrap();
                        let durable = lane.wait_durable(seq).unwrap();
                        assert!(durable >= seq);
                    }
                });
            }
        });
        let stats = lane.stats();
        assert_eq!(stats.frames, 8 * 32);
        assert_eq!(stats.frames_synced, stats.frames, "every frame acked");
        assert_eq!(
            stats.frames_synced,
            stats.fsyncs + stats.coalesced,
            "coalesce accounting is exact"
        );
        assert!(stats.fsyncs <= stats.frames);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
