//! The write-ahead log: length-prefixed, checksummed records with a
//! **total** scanner — any byte-level damage decodes to a typed
//! [`LogTail`], never a panic.
//!
//! ## Record format
//!
//! ```text
//! record  := len:u32 LE | checksum:u64 LE | payload (len bytes)
//! payload := tag:u8 | body
//!
//! tag 0x01  IngestRow   body := tenant:u64 | seq:u64 | arity:u32 | value:u32 × arity
//! tag 0x02  Tombstone   body := tenant:u64 | seq:u64 | upto:u64
//! tag 0x03  Compact     body := tenant:u64 | seq:u64 | compaction_epoch:u64
//! tag 0x04  IngestFrame body := tenant:u64 | seq:u64 | rows:u32 | arity:u32 | value:u32 × (rows × arity)
//! ```
//!
//! An `IngestFrame` is one *whole* ingest batch in one record: because
//! the checksum covers the full payload, a crash mid-frame leaves a
//! torn record that the scanner truncates away — frames are atomic on
//! disk exactly as they are in memory. `IngestRow` remains decodable
//! for logs written before frame-atomic ingest.
//!
//! All integers are little-endian. `checksum` is FNV-1a 64 over the
//! payload bytes. `seq` is a global, strictly increasing log sequence
//! number assigned by the writer; it orders records across tenants and
//! anchors snapshots (`replay records with seq > snapshot.last_seq`).
//!
//! The scanner ([`scan`]) accepts the longest valid prefix: it stops at
//! the first record whose header or payload is incomplete
//! ([`LogTail::Torn`]) or damaged ([`LogTail::Corrupt`]) and reports
//! the byte offset. [`LogWriter::open`] then truncates the file to the
//! valid prefix so new appends extend a clean log.

use crate::error::{DurableError, LogTail};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use sv_relation::Value;

/// Largest accepted record payload — mirrors the wire layer's frame
/// bound. A length prefix above this is corruption, not a big record.
pub const MAX_RECORD_LEN: usize = 1 << 26;

/// Bytes of record header (`len:u32` + `checksum:u64`).
pub const RECORD_HEADER_LEN: usize = 12;

const TAG_INGEST_ROW: u8 = 0x01;
const TAG_TOMBSTONE: u8 = 0x02;
const TAG_COMPACT: u8 = 0x03;
const TAG_INGEST_FRAME: u8 = 0x04;

/// FNV-1a 64-bit checksum (the log's integrity check — fast, portable,
/// and deterministic across platforms).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One durable log record. Every variant carries the tenant it belongs
/// to and its log sequence number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Record {
    /// A single provenance row (legacy, pre-frame-atomic logs). Replay
    /// re-applies it through the same validation, so a row the live
    /// path rejected is rejected again.
    IngestRow {
        /// Owning tenant.
        tenant: u64,
        /// Log sequence number.
        seq: u64,
        /// The workflow-schema row values.
        row: Vec<Value>,
    },
    /// One whole ingest frame, logged **after** validation but before
    /// apply: a frame in the log is by construction a frame that
    /// applies cleanly on replay. One record per frame means frame
    /// atomicity on disk — a torn frame is truncated whole.
    IngestFrame {
        /// Owning tenant.
        tenant: u64,
        /// Log sequence number.
        seq: u64,
        /// The frame's rows (workflow-schema values, arrival order).
        rows: Vec<Vec<Value>>,
    },
    /// Retention marker: this tenant's `IngestRow` records with
    /// `seq <= upto` are superseded by a snapshot written immediately
    /// before this record, and may be dropped when the log is rebuilt.
    Tombstone {
        /// Owning tenant.
        tenant: u64,
        /// Log sequence number.
        seq: u64,
        /// Highest superseded sequence number.
        upto: u64,
    },
    /// A compaction happened: the tenant's modules were rebuilt and its
    /// compaction epoch advanced to `compaction_epoch` (recorded so a
    /// replayed log agrees with the snapshot even if the two race a
    /// crash).
    Compact {
        /// Owning tenant.
        tenant: u64,
        /// Log sequence number.
        seq: u64,
        /// The tenant's compaction epoch after this compaction.
        compaction_epoch: u64,
    },
}

impl Record {
    /// The record's log sequence number.
    #[must_use]
    pub fn seq(&self) -> u64 {
        match self {
            Self::IngestRow { seq, .. }
            | Self::IngestFrame { seq, .. }
            | Self::Tombstone { seq, .. }
            | Self::Compact { seq, .. } => *seq,
        }
    }

    /// The record's owning tenant.
    #[must_use]
    pub fn tenant(&self) -> u64 {
        match self {
            Self::IngestRow { tenant, .. }
            | Self::IngestFrame { tenant, .. }
            | Self::Tombstone { tenant, .. }
            | Self::Compact { tenant, .. } => *tenant,
        }
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Self::IngestRow { tenant, seq, row } => {
                out.push(TAG_INGEST_ROW);
                out.extend_from_slice(&tenant.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&(row.len() as u32).to_le_bytes());
                for &v in row {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Self::IngestFrame { tenant, seq, rows } => {
                out.push(TAG_INGEST_FRAME);
                out.extend_from_slice(&tenant.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                // One workflow schema per tenant: every row of a frame
                // has the same arity, so it is stored once.
                let arity = rows.first().map_or(0, Vec::len);
                out.extend_from_slice(&(arity as u32).to_le_bytes());
                for row in rows {
                    debug_assert_eq!(row.len(), arity, "frame rows share one schema");
                    for &v in row {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
            Self::Tombstone { tenant, seq, upto } => {
                out.push(TAG_TOMBSTONE);
                out.extend_from_slice(&tenant.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&upto.to_le_bytes());
            }
            Self::Compact {
                tenant,
                seq,
                compaction_epoch,
            } => {
                out.push(TAG_COMPACT);
                out.extend_from_slice(&tenant.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&compaction_epoch.to_le_bytes());
            }
        }
        out
    }

    /// Encodes the record with its header (`len | checksum | payload`).
    ///
    /// # Errors
    /// [`DurableError::RecordTooLarge`] for a payload beyond
    /// [`MAX_RECORD_LEN`] (only reachable with a pathological arity).
    pub fn encode(&self) -> Result<Vec<u8>, DurableError> {
        let payload = self.encode_payload();
        if payload.len() > MAX_RECORD_LEN {
            return Err(DurableError::RecordTooLarge {
                len: payload.len(),
                max: MAX_RECORD_LEN,
            });
        }
        let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        Ok(out)
    }

    /// Total payload decoder: exact-length, every fault is `Err`.
    fn decode_payload(buf: &[u8]) -> Result<Self, String> {
        let mut r = PayloadReader { buf, pos: 0 };
        let tag = r.u8()?;
        let record = match tag {
            TAG_INGEST_ROW => {
                let tenant = r.u64()?;
                let seq = r.u64()?;
                let arity = r.u32()? as usize;
                // An arity that cannot fit in the remaining bytes is
                // corruption — reject before allocating.
                if arity > r.remaining() / 4 {
                    return Err(format!("row arity {arity} exceeds payload"));
                }
                let mut row = Vec::with_capacity(arity);
                for _ in 0..arity {
                    row.push(r.u32()?);
                }
                Self::IngestRow { tenant, seq, row }
            }
            TAG_INGEST_FRAME => {
                let tenant = r.u64()?;
                let seq = r.u64()?;
                let nrows = r.u32()? as usize;
                let arity = r.u32()? as usize;
                let want = nrows.checked_mul(arity).ok_or("frame size overflows")?;
                if want > r.remaining() / 4 {
                    return Err(format!("frame of {nrows}x{arity} exceeds payload"));
                }
                let mut rows = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    let mut row = Vec::with_capacity(arity);
                    for _ in 0..arity {
                        row.push(r.u32()?);
                    }
                    rows.push(row);
                }
                Self::IngestFrame { tenant, seq, rows }
            }
            TAG_TOMBSTONE => Self::Tombstone {
                tenant: r.u64()?,
                seq: r.u64()?,
                upto: r.u64()?,
            },
            TAG_COMPACT => Self::Compact {
                tenant: r.u64()?,
                seq: r.u64()?,
                compaction_epoch: r.u64()?,
            },
            other => return Err(format!("unknown record tag 0x{other:02x}")),
        };
        if r.remaining() != 0 {
            return Err(format!("{} trailing payload bytes", r.remaining()));
        }
        Ok(record)
    }
}

struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl PayloadReader<'_> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        if self.remaining() < n {
            return Err("payload truncated".into());
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

/// Scans a log image, returning the records of its longest valid
/// prefix, the tail disposition, and the byte length of that prefix.
/// Total: never panics, never errors — damage is data.
#[must_use]
pub fn scan(buf: &[u8]) -> (Vec<Record>, LogTail, u64) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let remaining = buf.len() - pos;
        if remaining == 0 {
            return (records, LogTail::Clean, pos as u64);
        }
        if remaining < RECORD_HEADER_LEN {
            return (records, LogTail::Torn { offset: pos as u64 }, pos as u64);
        }
        let len = u32::from_le_bytes([buf[pos], buf[pos + 1], buf[pos + 2], buf[pos + 3]]) as usize;
        if len > MAX_RECORD_LEN {
            return (records, LogTail::Corrupt { offset: pos as u64 }, pos as u64);
        }
        if remaining < RECORD_HEADER_LEN + len {
            return (records, LogTail::Torn { offset: pos as u64 }, pos as u64);
        }
        let checksum = u64::from_le_bytes([
            buf[pos + 4],
            buf[pos + 5],
            buf[pos + 6],
            buf[pos + 7],
            buf[pos + 8],
            buf[pos + 9],
            buf[pos + 10],
            buf[pos + 11],
        ]);
        let payload = &buf[pos + RECORD_HEADER_LEN..pos + RECORD_HEADER_LEN + len];
        if fnv1a64(payload) != checksum {
            return (records, LogTail::Corrupt { offset: pos as u64 }, pos as u64);
        }
        match Record::decode_payload(payload) {
            Ok(r) => records.push(r),
            Err(_) => {
                return (records, LogTail::Corrupt { offset: pos as u64 }, pos as u64);
            }
        }
        pos += RECORD_HEADER_LEN + len;
    }
}

/// Reads and scans a log file.
///
/// # Errors
/// Only IO errors — byte-level damage comes back as the [`LogTail`].
pub fn read_log(path: &Path) -> Result<(Vec<Record>, LogTail, u64), DurableError> {
    let mut buf = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut buf))
        .map_err(|e| DurableError::io("read log", path, &e))?;
    Ok(scan(&buf))
}

/// The append side of the log: assigns sequence numbers, frames and
/// checksums records, and tracks the byte length of the valid prefix.
#[derive(Debug)]
pub struct LogWriter {
    file: File,
    path: PathBuf,
    next_seq: u64,
    len_bytes: u64,
}

impl LogWriter {
    /// Creates a fresh, empty log (truncating any existing file).
    ///
    /// # Errors
    /// IO failures.
    pub fn create(path: &Path) -> Result<Self, DurableError> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)
            .map_err(|e| DurableError::io("create log", path, &e))?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            next_seq: 1,
            len_bytes: 0,
        })
    }

    /// Opens an existing log (or creates an empty one): scans it,
    /// **truncates** any torn/corrupt tail so appends extend the valid
    /// prefix, and positions the next sequence number after the highest
    /// surviving record. Returns the surviving records and the
    /// pre-truncation tail disposition.
    ///
    /// # Errors
    /// IO failures.
    pub fn open(path: &Path) -> Result<(Self, Vec<Record>, LogTail), DurableError> {
        let mut buf = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut buf)
                    .map_err(|e| DurableError::io("read log", path, &e))?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(DurableError::io("open log", path, &e)),
        }
        let (records, tail, valid_len) = scan(&buf);
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            // Keep the valid prefix — only the bad tail is cut, below.
            .truncate(false)
            .open(path)
            .map_err(|e| DurableError::io("open log", path, &e))?;
        if valid_len < buf.len() as u64 {
            file.set_len(valid_len)
                .map_err(|e| DurableError::io("truncate log tail", path, &e))?;
        }
        let mut file = file;
        file.seek(SeekFrom::Start(valid_len))
            .map_err(|e| DurableError::io("seek log", path, &e))?;
        let next_seq = records.iter().map(Record::seq).max().unwrap_or(0) + 1;
        Ok((
            Self {
                file,
                path: path.to_path_buf(),
                next_seq,
                len_bytes: valid_len,
            },
            records,
            tail,
        ))
    }

    /// The next sequence number this writer will assign.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The log file's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Byte length of the log's valid prefix (everything appended).
    #[must_use]
    pub fn len_bytes(&self) -> u64 {
        self.len_bytes
    }

    /// Highest sequence number assigned so far (0 when empty).
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    fn append(&mut self, record: &Record) -> Result<(), DurableError> {
        let bytes = record.encode()?;
        self.file
            .write_all(&bytes)
            .map_err(|e| DurableError::io("append", &self.path, &e))?;
        self.len_bytes += bytes.len() as u64;
        self.next_seq += 1;
        Ok(())
    }

    /// Appends an ingest-row record, returning its sequence number.
    ///
    /// # Errors
    /// IO failures; [`DurableError::RecordTooLarge`].
    pub fn append_row(&mut self, tenant: u64, row: &[Value]) -> Result<u64, DurableError> {
        let seq = self.next_seq;
        self.append(&Record::IngestRow {
            tenant,
            seq,
            row: row.to_vec(),
        })?;
        Ok(seq)
    }

    /// Appends one whole ingest frame as a single record, returning its
    /// sequence number. Rows must share one arity (one workflow schema
    /// per tenant).
    ///
    /// # Errors
    /// IO failures; [`DurableError::RecordTooLarge`].
    pub fn append_frame(&mut self, tenant: u64, rows: &[Vec<Value>]) -> Result<u64, DurableError> {
        let seq = self.next_seq;
        self.append(&Record::IngestFrame {
            tenant,
            seq,
            rows: rows.to_vec(),
        })?;
        Ok(seq)
    }

    /// A second handle to the log file, for syncing **outside** any
    /// lock that guards appends: `sync_data` on the clone flushes the
    /// same kernel file, so appenders never wait behind an fsync.
    ///
    /// # Errors
    /// IO failures (descriptor duplication).
    pub fn clone_handle(&self) -> Result<File, DurableError> {
        self.file
            .try_clone()
            .map_err(|e| DurableError::io("clone log handle", &self.path, &e))
    }

    /// Appends a tombstone record, returning its sequence number.
    ///
    /// # Errors
    /// IO failures.
    pub fn append_tombstone(&mut self, tenant: u64, upto: u64) -> Result<u64, DurableError> {
        let seq = self.next_seq;
        self.append(&Record::Tombstone { tenant, seq, upto })?;
        Ok(seq)
    }

    /// Appends a compaction record, returning its sequence number.
    ///
    /// # Errors
    /// IO failures.
    pub fn append_compact(
        &mut self,
        tenant: u64,
        compaction_epoch: u64,
    ) -> Result<u64, DurableError> {
        let seq = self.next_seq;
        self.append(&Record::Compact {
            tenant,
            seq,
            compaction_epoch,
        })?;
        Ok(seq)
    }

    /// Flushes appended records to stable storage (`fsync`).
    ///
    /// # Errors
    /// IO failures.
    pub fn sync(&mut self) -> Result<(), DurableError> {
        self.file
            .sync_data()
            .map_err(|e| DurableError::io("sync", &self.path, &e))
    }

    /// Atomically replaces the log's contents with `records`
    /// (rebuild-on-compact): writes a sibling temp file, syncs it, and
    /// renames it over the log. Sequence numbers are preserved — the
    /// writer's counter does not rewind.
    ///
    /// # Errors
    /// IO failures; [`DurableError::RecordTooLarge`].
    pub fn rewrite(&mut self, records: &[Record]) -> Result<(), DurableError> {
        let tmp = self.path.with_extension("log.tmp");
        let mut bytes = Vec::new();
        for r in records {
            bytes.extend_from_slice(&r.encode()?);
        }
        {
            let mut f = File::create(&tmp).map_err(|e| DurableError::io("create", &tmp, &e))?;
            f.write_all(&bytes)
                .map_err(|e| DurableError::io("write", &tmp, &e))?;
            f.sync_data()
                .map_err(|e| DurableError::io("sync", &tmp, &e))?;
        }
        std::fs::rename(&tmp, &self.path)
            .map_err(|e| DurableError::io("rename", &self.path, &e))?;
        // Reopen the handle: the old descriptor points at the unlinked
        // pre-rewrite inode.
        self.file = OpenOptions::new()
            .write(true)
            .open(&self.path)
            .map_err(|e| DurableError::io("reopen log", &self.path, &e))?;
        self.file
            .seek(SeekFrom::End(0))
            .map_err(|e| DurableError::io("seek log", &self.path, &e))?;
        self.len_bytes = bytes.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::IngestRow {
                tenant: 1,
                seq: 1,
                row: vec![0, 1, 2],
            },
            Record::IngestFrame {
                tenant: 2,
                seq: 2,
                rows: vec![vec![3, 4, 5], vec![6, 7, 8]],
            },
            Record::Tombstone {
                tenant: 1,
                seq: 3,
                upto: 1,
            },
            Record::Compact {
                tenant: 1,
                seq: 4,
                compaction_epoch: 1,
            },
        ]
    }

    fn encode_all(records: &[Record]) -> Vec<u8> {
        records.iter().flat_map(|r| r.encode().unwrap()).collect()
    }

    #[test]
    fn roundtrip_and_clean_scan() {
        let records = sample_records();
        let buf = encode_all(&records);
        let (got, tail, len) = scan(&buf);
        assert_eq!(got, records);
        assert_eq!(tail, LogTail::Clean);
        assert_eq!(len, buf.len() as u64);
    }

    #[test]
    fn every_truncation_is_torn_or_shorter_clean() {
        let records = sample_records();
        let buf = encode_all(&records);
        let boundaries: Vec<usize> = {
            let mut b = vec![0];
            let mut acc = 0;
            for r in &records {
                acc += r.encode().unwrap().len();
                b.push(acc);
            }
            b
        };
        for cut in 0..buf.len() {
            let (got, tail, _) = scan(&buf[..cut]);
            if boundaries.contains(&cut) {
                assert_eq!(tail, LogTail::Clean, "cut at boundary {cut}");
            } else {
                assert!(
                    matches!(tail, LogTail::Torn { .. }),
                    "cut at {cut} gave {tail:?}"
                );
            }
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(got.len(), whole, "cut at {cut}");
            assert_eq!(got[..], records[..whole]);
        }
    }

    #[test]
    fn every_bit_flip_is_detected_or_prefix_preserving() {
        let records = sample_records();
        let buf = encode_all(&records);
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut damaged = buf.clone();
                damaged[byte] ^= 1 << bit;
                let (got, tail, _) = scan(&damaged);
                // The records before the damaged one must survive
                // unchanged; nothing at or after the damage may appear.
                assert!(
                    matches!(tail, LogTail::Corrupt { .. } | LogTail::Torn { .. }),
                    "flip {byte}.{bit} went undetected: {tail:?}"
                );
                assert!(got.len() < records.len());
                assert_eq!(got[..], records[..got.len()]);
            }
        }
    }

    #[test]
    fn frame_records_roundtrip_edge_shapes() {
        for rows in [
            vec![],
            vec![vec![]],
            vec![vec![9]; 7],
            vec![vec![0, 1, 2, 3]; 3],
        ] {
            let r = Record::IngestFrame {
                tenant: 42,
                seq: 1,
                rows,
            };
            let buf = r.encode().unwrap();
            let (got, tail, len) = scan(&buf);
            assert_eq!(tail, LogTail::Clean);
            assert_eq!(len, buf.len() as u64);
            assert_eq!(got, vec![r]);
        }
    }

    #[test]
    fn writer_open_truncates_damage_and_resumes_seq() {
        let dir = std::env::temp_dir().join(format!("sv-durable-log-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let mut w = LogWriter::create(&path).unwrap();
        assert_eq!(w.append_row(7, &[1, 2]).unwrap(), 1);
        assert_eq!(w.append_row(7, &[3, 4]).unwrap(), 2);
        w.sync().unwrap();
        let clean_len = w.len_bytes();
        // Simulate a torn third append.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0x05, 0x00]).unwrap();
        }
        let (w2, records, tail) = LogWriter::open(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(tail, LogTail::Torn { offset: clean_len });
        assert_eq!(w2.next_seq(), 3);
        assert_eq!(w2.len_bytes(), clean_len);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            clean_len,
            "torn tail must be truncated away"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_replaces_contents_atomically() {
        let dir = std::env::temp_dir().join(format!("sv-durable-rw-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let mut w = LogWriter::create(&path).unwrap();
        w.append_row(1, &[1]).unwrap();
        w.append_row(2, &[2]).unwrap();
        let keep = Record::IngestRow {
            tenant: 2,
            seq: 2,
            row: vec![2],
        };
        w.rewrite(std::slice::from_ref(&keep)).unwrap();
        w.append_row(3, &[3]).unwrap();
        w.sync().unwrap();
        let (records, tail, _) = read_log(&path).unwrap();
        assert_eq!(tail, LogTail::Clean);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], keep);
        assert_eq!(records[1].seq(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
