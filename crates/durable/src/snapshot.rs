//! Snapshots: a point-in-time serialization of every tenant's durable
//! state, written atomically (temp file + rename) and validated with
//! the same length-prefix + checksum discipline as the log.
//!
//! ## Layout
//!
//! ```text
//! file    := len:u32 LE | checksum:u64 LE | payload (len bytes)
//! payload := magic "SVSNAP01" | last_seq:u64 | n_tenants:u32 | tenant × n_tenants
//! tenant  := id:u64 | compaction_epoch:u64
//!          | n_modules:u32 | (module_index:u32 | epoch:u64) × n_modules
//!          | n_rows:u64 | arity:u32 | value:u32 × (n_rows × arity)
//! ```
//!
//! The per-tenant **ledger** is the sequence of workflow-schema rows
//! the tenant applied, in arrival order. Module relations are *not*
//! serialized: they are pure functions of the ledger (projection +
//! first-occurrence dedup), so recovery rebuilds them via
//! [`WorkflowOracles::restore_ledger`](sv_core::safety::WorkflowOracles::restore_ledger).
//! Module **epochs** do travel explicitly — after a compaction an epoch
//! is not derivable from row counts.
//!
//! `last_seq` anchors the snapshot in the log: recovery replays only
//! records with `seq > last_seq`.

use crate::error::DurableError;
use crate::log::fnv1a64;
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;
use sv_relation::Value;

const MAGIC: &[u8; 8] = b"SVSNAP01";

/// Largest accepted snapshot payload (generous: snapshots hold whole
/// ledgers).
pub const MAX_SNAPSHOT_LEN: usize = 1 << 30;

/// One tenant's durable state at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// The tenant's wire id.
    pub tenant: u64,
    /// Retention generation: how many compactions this tenant has
    /// undergone.
    pub compaction_epoch: u64,
    /// `(module index, relation epoch)` per private module, in the
    /// oracle-set iteration order.
    pub module_epochs: Vec<(u32, u64)>,
    /// Applied workflow rows, arrival order. All rows share the
    /// workflow schema's arity.
    pub ledger: Vec<Vec<Value>>,
}

/// A whole-registry snapshot.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Highest log sequence number whose effects the snapshot captures.
    pub last_seq: u64,
    /// Per-tenant states, ascending tenant id.
    pub tenants: Vec<TenantSnapshot>,
}

impl Snapshot {
    /// Serializes the snapshot payload (without the file header) —
    /// deterministic, so snapshot size is an exact-gateable metric.
    #[must_use]
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.last_seq.to_le_bytes());
        out.extend_from_slice(&(self.tenants.len() as u32).to_le_bytes());
        for t in &self.tenants {
            out.extend_from_slice(&t.tenant.to_le_bytes());
            out.extend_from_slice(&t.compaction_epoch.to_le_bytes());
            out.extend_from_slice(&(t.module_epochs.len() as u32).to_le_bytes());
            for &(idx, epoch) in &t.module_epochs {
                out.extend_from_slice(&idx.to_le_bytes());
                out.extend_from_slice(&epoch.to_le_bytes());
            }
            out.extend_from_slice(&(t.ledger.len() as u64).to_le_bytes());
            let arity = t.ledger.first().map_or(0, Vec::len) as u32;
            out.extend_from_slice(&arity.to_le_bytes());
            for row in &t.ledger {
                debug_assert_eq!(row.len(), arity as usize, "ledger rows share one schema");
                for &v in row {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        out
    }

    /// Total decoder for a snapshot payload.
    ///
    /// # Errors
    /// [`DurableError::SnapshotCorrupt`] on any structural fault.
    pub fn decode_payload(buf: &[u8]) -> Result<Self, DurableError> {
        let corrupt = |pos: usize, detail: &str| DurableError::SnapshotCorrupt {
            offset: pos as u64,
            detail: detail.to_string(),
        };
        let mut r = SnapReader { buf, pos: 0 };
        let magic = r.take(8).map_err(|p| corrupt(p, "truncated magic"))?;
        if magic != MAGIC {
            return Err(corrupt(0, "bad magic"));
        }
        let last_seq = r.u64().map_err(|p| corrupt(p, "truncated last_seq"))?;
        let n_tenants = r.u32().map_err(|p| corrupt(p, "truncated tenant count"))?;
        let mut tenants = Vec::new();
        for _ in 0..n_tenants {
            let tenant = r.u64().map_err(|p| corrupt(p, "truncated tenant id"))?;
            let compaction_epoch = r
                .u64()
                .map_err(|p| corrupt(p, "truncated compaction epoch"))?;
            let n_modules = r.u32().map_err(|p| corrupt(p, "truncated module count"))? as usize;
            if n_modules > r.remaining() / 12 {
                return Err(corrupt(r.pos, "module count exceeds payload"));
            }
            let mut module_epochs = Vec::with_capacity(n_modules);
            for _ in 0..n_modules {
                let idx = r.u32().map_err(|p| corrupt(p, "truncated module index"))?;
                let epoch = r.u64().map_err(|p| corrupt(p, "truncated module epoch"))?;
                module_epochs.push((idx, epoch));
            }
            let n_rows = r.u64().map_err(|p| corrupt(p, "truncated row count"))? as usize;
            let arity = r.u32().map_err(|p| corrupt(p, "truncated arity"))? as usize;
            if n_rows
                .checked_mul(arity)
                .is_none_or(|cells| cells > r.remaining() / 4)
            {
                return Err(corrupt(r.pos, "ledger size exceeds payload"));
            }
            let mut ledger = Vec::with_capacity(n_rows);
            for _ in 0..n_rows {
                let mut row = Vec::with_capacity(arity);
                for _ in 0..arity {
                    row.push(r.u32().map_err(|p| corrupt(p, "truncated ledger"))?);
                }
                ledger.push(row);
            }
            tenants.push(TenantSnapshot {
                tenant,
                compaction_epoch,
                module_epochs,
                ledger,
            });
        }
        if r.remaining() != 0 {
            return Err(corrupt(r.pos, "trailing bytes"));
        }
        Ok(Self { last_seq, tenants })
    }

    /// The full file image (`len | checksum | payload`).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(12 + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Writes the snapshot **atomically**: a sibling `.tmp` file is
    /// written, synced, and renamed over `path` — a crash mid-write
    /// leaves either the old snapshot or the new one, never a torn mix.
    ///
    /// # Errors
    /// IO failures.
    pub fn save(&self, path: &Path) -> Result<(), DurableError> {
        let tmp = path.with_extension("svs.tmp");
        let bytes = self.encode();
        {
            let mut f = File::create(&tmp).map_err(|e| DurableError::io("create", &tmp, &e))?;
            f.write_all(&bytes)
                .map_err(|e| DurableError::io("write", &tmp, &e))?;
            f.sync_data()
                .map_err(|e| DurableError::io("sync", &tmp, &e))?;
        }
        std::fs::rename(&tmp, path).map_err(|e| DurableError::io("rename", path, &e))?;
        Ok(())
    }

    /// Loads and validates a snapshot; `Ok(None)` when the file does
    /// not exist (a fresh directory, not a fault).
    ///
    /// # Errors
    /// IO failures; [`DurableError::SnapshotCorrupt`] on any damage
    /// (checksum mismatch, truncation, structural faults).
    pub fn load(path: &Path) -> Result<Option<Self>, DurableError> {
        let mut buf = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut buf)
                    .map_err(|e| DurableError::io("read snapshot", path, &e))?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(DurableError::io("open snapshot", path, &e)),
        }
        if buf.len() < 12 {
            return Err(DurableError::SnapshotCorrupt {
                offset: 0,
                detail: "file shorter than header".into(),
            });
        }
        let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        if len > MAX_SNAPSHOT_LEN || buf.len() != 12 + len {
            return Err(DurableError::SnapshotCorrupt {
                offset: 0,
                detail: format!("length prefix {len} does not match file size {}", buf.len()),
            });
        }
        let checksum = u64::from_le_bytes([
            buf[4], buf[5], buf[6], buf[7], buf[8], buf[9], buf[10], buf[11],
        ]);
        let payload = &buf[12..];
        if fnv1a64(payload) != checksum {
            return Err(DurableError::SnapshotCorrupt {
                offset: 4,
                detail: "checksum mismatch".into(),
            });
        }
        Self::decode_payload(payload).map(Some)
    }
}

struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], usize> {
        if self.remaining() < n {
            return Err(self.pos);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, usize> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, usize> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            last_seq: 42,
            tenants: vec![
                TenantSnapshot {
                    tenant: 1,
                    compaction_epoch: 2,
                    module_epochs: vec![(0, 5), (1, 4)],
                    ledger: vec![vec![0, 1, 1], vec![1, 0, 1]],
                },
                TenantSnapshot {
                    tenant: 9,
                    compaction_epoch: 0,
                    module_epochs: vec![(0, 0)],
                    ledger: vec![],
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let s = sample();
        let got = Snapshot::decode_payload(&s.encode_payload()).unwrap();
        assert_eq!(got, s);
    }

    #[test]
    fn save_load_roundtrip_and_missing_is_none() {
        let dir = std::env::temp_dir().join(format!("sv-durable-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.svs");
        assert!(Snapshot::load(&path).unwrap().is_none());
        let s = sample();
        s.save(&path).unwrap();
        assert_eq!(Snapshot::load(&path).unwrap(), Some(s));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_bit_flip_is_a_typed_fault() {
        let dir = std::env::temp_dir().join(format!("sv-durable-snapflip-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.svs");
        let s = sample();
        let clean = s.encode();
        for byte in 0..clean.len() {
            let mut damaged = clean.clone();
            damaged[byte] ^= 0x10;
            std::fs::write(&path, &damaged).unwrap();
            let got = Snapshot::load(&path);
            assert!(
                matches!(got, Err(DurableError::SnapshotCorrupt { .. })),
                "flip at byte {byte} was not detected"
            );
        }
        // Truncations too.
        for cut in 0..clean.len() {
            std::fs::write(&path, &clean[..cut]).unwrap();
            assert!(
                matches!(
                    Snapshot::load(&path),
                    Err(DurableError::SnapshotCorrupt { .. })
                ),
                "truncation at {cut} was not detected"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
