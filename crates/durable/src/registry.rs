//! The durable registry: a [`TenantRegistry`] whose ingest path
//! **writes ahead** to a checksummed log, with snapshotting, log
//! retention (tombstones + rebuild-on-compact), and crash recovery.
//!
//! ## Write path
//!
//! Every ingest frame goes through
//! [`Tenant::ingest_rows_with`](sv_serve::Tenant::ingest_rows_with):
//! under the tenant's single-writer lane, each row is appended to the
//! log **before** it touches the oracle. A failure — validation or IO —
//! stops the frame with the usual prefix discipline, so the log's
//! record sequence is exactly the live apply-attempt sequence and
//! replay reconstructs the same state (rows the live path rejected are
//! rejected again by the same validation).
//!
//! ## Recovery contract
//!
//! [`DurableRegistry::recover`] = snapshot load (if present) + log-tail
//! replay (records with `seq >` the snapshot's `last_seq`). The
//! recovered registry is **bit-for-bit equivalent** to the
//! uninterrupted run: same module rows in the same arrival order, same
//! group structure, same relation epochs — the crash-fault suite
//! (`tests/crash_prop.rs`) proves this at every log truncation point.
//!
//! ## Retention
//!
//! [`DurableRegistry::compact`] rebuilds a tenant's modules from its
//! ledger with every relation epoch bumped by one (strictly greater
//! than any epoch a client has seen, so epoch-conditioned probes get
//! `StaleEpoch` instead of stale answers) and a **fresh memo** per
//! module, writes a snapshot, marks the superseded log prefix with a
//! tombstone, and rewrites the log without it.

use crate::error::{DurableError, LogTail};
use crate::log::{LogWriter, Record};
use crate::snapshot::{Snapshot, TenantSnapshot};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use sv_core::safety::SafetyOracle as _;
use sv_core::CoreError;
use sv_relation::Tuple;
use sv_serve::{
    AdmissionLimits, IngestInterrupt, IngestSink, IngestSinkError, Tenant, TenantId, TenantRegistry,
};
use sv_workflow::{ModuleId, Workflow};

/// File name of the write-ahead log inside the durable directory.
pub const LOG_FILE: &str = "wal.log";
/// File name of the snapshot inside the durable directory.
pub const SNAPSHOT_FILE: &str = "snapshot.svs";

/// One tenant's definition for [`DurableRegistry::recover`]: durable
/// state stores rows and epochs, not workflow structure, so the caller
/// re-supplies the workflows (they are code, not data).
pub struct TenantDef<'a> {
    /// The tenant's wire id.
    pub id: TenantId,
    /// The tenant's workflow.
    pub workflow: &'a Workflow,
    /// Admission bounds for the recovered tenant.
    pub limits: AdmissionLimits,
}

/// What [`DurableRegistry::recover`] found and did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a snapshot was loaded.
    pub snapshot_loaded: bool,
    /// The log's tail disposition before truncation.
    pub tail: LogTail,
    /// Log records replayed (those past the snapshot).
    pub records_replayed: u64,
    /// Replayed rows that applied.
    pub rows_applied: u64,
    /// Replayed rows rejected by validation (the live path rejected
    /// them too — this is the log's write-ahead discipline, not loss).
    pub rows_rejected: u64,
    /// Highest sequence number in the recovered log.
    pub last_seq: u64,
}

/// An ingest through the durable registry failed.
#[derive(Debug)]
pub enum DurableIngestError {
    /// A row failed validation (frame-positioned, as on the plain
    /// serving path). The row *was* logged; replay rejects it the same
    /// way.
    Rejected {
        /// Rows of the frame applied before the failure.
        applied: u64,
        /// The offending row's error.
        error: CoreError,
    },
    /// The durability layer refused (IO failure, unknown tenant): the
    /// offending row was neither logged nor applied.
    Durable {
        /// Rows of the frame applied before the failure.
        applied: u64,
        /// The underlying fault.
        error: DurableError,
    },
}

impl fmt::Display for DurableIngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Rejected { applied, error } => {
                write!(f, "ingest rejected after {applied} rows: {error}")
            }
            Self::Durable { applied, error } => {
                write!(f, "durable ingest failed after {applied} rows: {error}")
            }
        }
    }
}

impl std::error::Error for DurableIngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Rejected { error, .. } => Some(error),
            Self::Durable { error, .. } => Some(error),
        }
    }
}

struct TenantDurable {
    /// Applied workflow rows, arrival order — the durable ground truth
    /// from which module relations are pure derivations.
    ledger: Vec<Tuple>,
    /// Retention generation (compactions undergone).
    compaction_epoch: u64,
}

struct State {
    log: LogWriter,
    tenants: BTreeMap<u64, TenantDurable>,
}

/// A [`TenantRegistry`] with durability: write-ahead logging on
/// ingest, snapshots, retention, recovery.
///
/// All mutation must go through this wrapper (or a [`Server`]
/// configured with [`DurableRegistry::ingest_sink`]); mutating the
/// inner registry's tenants directly would bypass the log.
///
/// [`Server`]: sv_serve::Server
pub struct DurableRegistry {
    inner: Arc<TenantRegistry>,
    dir: PathBuf,
    state: Mutex<State>,
}

impl DurableRegistry {
    /// Creates a fresh durable directory: an empty log, no snapshot
    /// (a stale snapshot from an earlier life is removed).
    ///
    /// # Errors
    /// IO failures.
    pub fn create(dir: &Path) -> Result<Self, DurableError> {
        std::fs::create_dir_all(dir).map_err(|e| DurableError::io("create dir", dir, &e))?;
        let log = LogWriter::create(&dir.join(LOG_FILE))?;
        let snap = dir.join(SNAPSHOT_FILE);
        if snap.exists() {
            std::fs::remove_file(&snap).map_err(|e| DurableError::io("remove", &snap, &e))?;
        }
        Ok(Self {
            inner: Arc::new(TenantRegistry::new()),
            dir: dir.to_path_buf(),
            state: Mutex::new(State {
                log,
                tenants: BTreeMap::new(),
            }),
        })
    }

    /// Rebuilds a registry from a durable directory: loads the snapshot
    /// (if any), restores every snapshotted tenant's modules and epochs
    /// from its ledger, then replays the log tail (`seq > last_seq`)
    /// through the ordinary ingest validation. The log's torn or
    /// corrupt tail, if any, is truncated away so the recovered log is
    /// clean.
    ///
    /// # Errors
    /// IO failures; [`DurableError::SnapshotCorrupt`] for a damaged
    /// snapshot; [`DurableError::DefMismatch`] when durable state names
    /// tenants or modules the definitions don't provide.
    pub fn recover(
        dir: &Path,
        defs: &[TenantDef<'_>],
    ) -> Result<(Self, RecoveryReport), DurableError> {
        std::fs::create_dir_all(dir).map_err(|e| DurableError::io("create dir", dir, &e))?;
        let snapshot = Snapshot::load(&dir.join(SNAPSHOT_FILE))?;
        let (log, records, tail) = LogWriter::open(&dir.join(LOG_FILE))?;
        let inner = Arc::new(TenantRegistry::new());
        let mut tenants = BTreeMap::new();
        for def in defs {
            inner.register_streaming(def.id, def.workflow, def.limits)?;
            tenants.insert(
                def.id.0,
                TenantDurable {
                    ledger: Vec::new(),
                    compaction_epoch: 0,
                },
            );
        }
        let this = Self {
            inner,
            dir: dir.to_path_buf(),
            state: Mutex::new(State { log, tenants }),
        };
        let mut report = RecoveryReport {
            snapshot_loaded: snapshot.is_some(),
            tail,
            records_replayed: 0,
            rows_applied: 0,
            rows_rejected: 0,
            last_seq: 0,
        };
        let snap_last_seq = snapshot.as_ref().map_or(0, |s| s.last_seq);
        {
            let mut st = this.state.lock().expect("durable state poisoned");
            if let Some(snap) = snapshot {
                for ts in snap.tenants {
                    let Some(td) = st.tenants.get_mut(&ts.tenant) else {
                        return Err(DurableError::DefMismatch {
                            detail: format!(
                                "snapshot names tenant {} with no definition",
                                ts.tenant
                            ),
                        });
                    };
                    let tenant = this
                        .inner
                        .get(TenantId(ts.tenant))
                        .expect("registered above");
                    let live: Vec<ModuleId> = {
                        let guard = tenant.oracles();
                        guard.iter().map(|(m, _)| m).collect()
                    };
                    if live.len() != ts.module_epochs.len() {
                        return Err(DurableError::DefMismatch {
                            detail: format!(
                                "tenant {}: snapshot has {} modules, workflow has {}",
                                ts.tenant,
                                ts.module_epochs.len(),
                                live.len()
                            ),
                        });
                    }
                    let mut id_epochs = Vec::with_capacity(live.len());
                    for (mid, &(idx, epoch)) in live.iter().zip(&ts.module_epochs) {
                        if mid.index() as u32 != idx {
                            return Err(DurableError::DefMismatch {
                                detail: format!(
                                    "tenant {}: snapshot module index {idx} where workflow has {}",
                                    ts.tenant,
                                    mid.index()
                                ),
                            });
                        }
                        id_epochs.push((*mid, epoch));
                    }
                    let ledger: Vec<Tuple> = ts.ledger.into_iter().map(Tuple::new).collect();
                    tenant.with_oracles_mut(|o| o.restore_ledger(&ledger, &id_epochs))?;
                    td.ledger = ledger;
                    td.compaction_epoch = ts.compaction_epoch;
                }
            }
            let st = &mut *st;
            for r in &records {
                if r.seq() <= snap_last_seq {
                    continue;
                }
                report.records_replayed += 1;
                match r {
                    Record::IngestRow { tenant, row, .. } => {
                        let Some(td) = st.tenants.get_mut(tenant) else {
                            return Err(DurableError::DefMismatch {
                                detail: format!("log names tenant {tenant} with no definition"),
                            });
                        };
                        let t = this.inner.get(TenantId(*tenant)).expect("registered above");
                        let tuple = Tuple::new(row.clone());
                        // Replay is the same per-row validation as the live
                        // path; a rejected row was rejected live too.
                        match t.ingest_rows(std::slice::from_ref(&tuple)) {
                            Ok(_) => {
                                td.ledger.push(tuple);
                                report.rows_applied += 1;
                            }
                            Err(_) => report.rows_rejected += 1,
                        }
                    }
                    Record::Tombstone { tenant, upto, .. } => {
                        // A tombstone promises its prefix is captured by a
                        // snapshot; without one, state would silently lose
                        // rows — refuse instead.
                        if *upto > snap_last_seq {
                            return Err(DurableError::DefMismatch {
                                detail: format!(
                                    "tombstone for tenant {tenant} supersedes seq <= {upto} \
                                 but the snapshot covers only seq <= {snap_last_seq}"
                                ),
                            });
                        }
                    }
                    Record::Compact {
                        tenant,
                        compaction_epoch,
                        ..
                    } => {
                        let Some(td) = st.tenants.get_mut(tenant) else {
                            return Err(DurableError::DefMismatch {
                                detail: format!("log names tenant {tenant} with no definition"),
                            });
                        };
                        td.compaction_epoch = (*compaction_epoch).max(td.compaction_epoch);
                    }
                }
            }
            report.last_seq = st.log.last_seq();
        }
        Ok((this, report))
    }

    /// The durable directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The inner serving registry (share with a
    /// [`Server`](sv_serve::Server); pair with
    /// [`ingest_sink`](Self::ingest_sink) so served ingest writes
    /// through the log).
    #[must_use]
    pub fn registry(&self) -> &Arc<TenantRegistry> {
        &self.inner
    }

    /// Looks up a tenant.
    #[must_use]
    pub fn tenant(&self, id: TenantId) -> Option<Arc<Tenant>> {
        self.inner.get(id)
    }

    /// Registers a streaming tenant (starts empty, grows through
    /// [`ingest`](Self::ingest)).
    ///
    /// # Errors
    /// Duplicate ids and structural workflow errors
    /// ([`DurableError::Serve`]).
    pub fn register_streaming(
        &self,
        id: TenantId,
        workflow: &Workflow,
        limits: AdmissionLimits,
    ) -> Result<Arc<Tenant>, DurableError> {
        let tenant = self.inner.register_streaming(id, workflow, limits)?;
        self.state
            .lock()
            .expect("durable state poisoned")
            .tenants
            .insert(
                id.0,
                TenantDurable {
                    ledger: Vec::new(),
                    compaction_epoch: 0,
                },
            );
        Ok(tenant)
    }

    /// Ingests provenance rows with **write-ahead** durability: each
    /// row is appended to the log, then applied, under the tenant's
    /// single-writer lane; the log is synced once per frame.
    ///
    /// Returns the number of new module rows, like
    /// [`Tenant::ingest_rows`].
    ///
    /// # Errors
    /// [`DurableIngestError::Rejected`] on the first invalid row
    /// (earlier rows stay applied *and logged*);
    /// [`DurableIngestError::Durable`] when logging itself fails.
    pub fn ingest(&self, id: TenantId, rows: &[Tuple]) -> Result<u64, DurableIngestError> {
        let unknown = || DurableIngestError::Durable {
            applied: 0,
            error: DurableError::UnknownTenant { tenant: id.0 },
        };
        let tenant = self.inner.get(id).ok_or_else(unknown)?;
        let mut st = self.state.lock().expect("durable state poisoned");
        let st = &mut *st;
        if !st.tenants.contains_key(&id.0) {
            return Err(unknown());
        }
        let log = &mut st.log;
        let result = tenant.ingest_rows_with(rows, |_, row| {
            log.append_row(id.0, row.values()).map(|_seq| ())
        });
        let synced = log.sync();
        let td = st.tenants.get_mut(&id.0).expect("checked above");
        match result {
            Ok(added) => {
                td.ledger.extend_from_slice(rows);
                synced.map_err(|error| DurableIngestError::Durable {
                    applied: rows.len() as u64,
                    error,
                })?;
                Ok(added)
            }
            Err(IngestInterrupt::Rejected(f)) => {
                td.ledger.extend_from_slice(&rows[..f.applied as usize]);
                Err(DurableIngestError::Rejected {
                    applied: f.applied,
                    error: f.error,
                })
            }
            Err(IngestInterrupt::Hook { applied, error }) => {
                td.ledger.extend_from_slice(&rows[..applied as usize]);
                Err(DurableIngestError::Durable { applied, error })
            }
        }
    }

    /// An [`IngestSink`] routing a [`Server`](sv_serve::Server)'s
    /// ingest frames through this durable registry, so socket and
    /// loopback traffic get the same write-ahead guarantee as direct
    /// [`ingest`](Self::ingest) calls.
    #[must_use]
    pub fn ingest_sink(self: &Arc<Self>) -> Arc<IngestSink> {
        let this = Arc::clone(self);
        Arc::new(move |tenant: &Arc<Tenant>, rows: &[Tuple]| {
            this.ingest(tenant.id(), rows).map_err(|e| match e {
                DurableIngestError::Rejected { applied, error } => IngestSinkError {
                    applied,
                    detail: error.to_string(),
                },
                DurableIngestError::Durable { applied, error } => IngestSinkError {
                    applied,
                    detail: format!("durable log: {error}"),
                },
            })
        })
    }

    fn build_snapshot(&self, st: &State) -> Result<Snapshot, DurableError> {
        let mut tenants = Vec::with_capacity(st.tenants.len());
        for (&tid, td) in &st.tenants {
            let tenant = self
                .inner
                .get(TenantId(tid))
                .ok_or(DurableError::UnknownTenant { tenant: tid })?;
            let module_epochs: Vec<(u32, u64)> = {
                let guard = tenant.oracles();
                guard
                    .iter()
                    .map(|(mid, o)| (mid.index() as u32, o.relation_epoch()))
                    .collect()
            };
            tenants.push(TenantSnapshot {
                tenant: tid,
                compaction_epoch: td.compaction_epoch,
                module_epochs,
                ledger: td.ledger.iter().map(|t| t.values().to_vec()).collect(),
            });
        }
        Ok(Snapshot {
            last_seq: st.log.last_seq(),
            tenants,
        })
    }

    /// Writes a snapshot of every tenant (atomic temp-file + rename),
    /// anchored at the log's current last sequence number. The log is
    /// left as-is; recovery replays only records past the anchor.
    ///
    /// Returns the snapshot's encoded size in bytes.
    ///
    /// # Errors
    /// IO failures.
    pub fn snapshot(&self) -> Result<u64, DurableError> {
        let st = self.state.lock().expect("durable state poisoned");
        let snap = self.build_snapshot(&st)?;
        snap.save(&self.dir.join(SNAPSHOT_FILE))?;
        Ok(snap.encode().len() as u64)
    }

    /// Compacts one tenant: rebuilds every module from the ledger with
    /// its relation epoch bumped by one and a **fresh memo** (any probe
    /// conditioned on a pre-compaction epoch now gets `StaleEpoch`, and
    /// no stale cached level can survive), advances the tenant's
    /// compaction epoch, snapshots, tombstones the superseded log
    /// prefix, and rewrites the log without it.
    ///
    /// Returns the tenant's new compaction epoch.
    ///
    /// # Errors
    /// [`DurableError::UnknownTenant`]; IO failures; reconstruction
    /// failures ([`DurableError::Core`]).
    pub fn compact(&self, id: TenantId) -> Result<u64, DurableError> {
        let tenant = self
            .inner
            .get(id)
            .ok_or(DurableError::UnknownTenant { tenant: id.0 })?;
        let mut st = self.state.lock().expect("durable state poisoned");
        let st = &mut *st;
        let td = st
            .tenants
            .get_mut(&id.0)
            .ok_or(DurableError::UnknownTenant { tenant: id.0 })?;
        // 1. Rebuild in memory: same rows, epoch + 1, cold memo.
        let id_epochs: Vec<(ModuleId, u64)> = {
            let guard = tenant.oracles();
            guard
                .iter()
                .map(|(mid, o)| (mid, o.relation_epoch() + 1))
                .collect()
        };
        tenant.with_oracles_mut(|o| o.restore_ledger(&td.ledger, &id_epochs))?;
        td.compaction_epoch += 1;
        let new_epoch = td.compaction_epoch;
        // 2. Snapshot the rebuilt state (anchor = everything logged).
        let upto = st.log.last_seq();
        let snap = self.build_snapshot(st)?;
        snap.save(&self.dir.join(SNAPSHOT_FILE))?;
        // 3. Mark retention in the log (audit trail; replay-idempotent
        //    against the snapshot written above).
        st.log.append_tombstone(id.0, upto)?;
        st.log.append_compact(id.0, new_epoch)?;
        st.log.sync()?;
        // 4. Rebuild the log without the superseded prefix.
        let (records, _tail, _len) = crate::log::read_log(&self.dir.join(LOG_FILE))?;
        let kept: Vec<Record> = records
            .into_iter()
            .filter(|r| !(r.tenant() == id.0 && r.seq() <= upto))
            .collect();
        st.log.rewrite(&kept)?;
        Ok(new_epoch)
    }

    /// The tenant's retention generation (compactions undergone).
    #[must_use]
    pub fn compaction_epoch(&self, id: TenantId) -> Option<u64> {
        self.state
            .lock()
            .expect("durable state poisoned")
            .tenants
            .get(&id.0)
            .map(|td| td.compaction_epoch)
    }

    /// Number of applied rows in the tenant's durable ledger.
    #[must_use]
    pub fn ledger_len(&self, id: TenantId) -> Option<usize> {
        self.state
            .lock()
            .expect("durable state poisoned")
            .tenants
            .get(&id.0)
            .map(|td| td.ledger.len())
    }

    /// Byte length of the log's valid prefix.
    #[must_use]
    pub fn log_bytes(&self) -> u64 {
        self.state
            .lock()
            .expect("durable state poisoned")
            .log
            .len_bytes()
    }

    /// Highest log sequence number assigned so far.
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.state
            .lock()
            .expect("durable state poisoned")
            .log
            .last_seq()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_workflow::library::one_one_chain;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sv-durable-reg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn epochs_of(t: &Arc<Tenant>) -> Vec<u64> {
        t.epochs().iter().map(|me| me.epoch).collect()
    }

    #[test]
    fn ingest_recover_roundtrip_without_snapshot() {
        let dir = tmp_dir("roundtrip");
        let wf = one_one_chain(2, 3);
        let id = TenantId(5);
        {
            let reg = DurableRegistry::create(&dir).unwrap();
            reg.register_streaming(id, &wf, AdmissionLimits::default())
                .unwrap();
            let rows: Vec<Tuple> = (0..4)
                .map(|i| wf.run(&[i & 1, (i >> 1) & 1, 1]).unwrap())
                .collect();
            reg.ingest(id, &rows).unwrap();
        }
        let (rec, report) = DurableRegistry::recover(
            &dir,
            &[TenantDef {
                id,
                workflow: &wf,
                limits: AdmissionLimits::default(),
            }],
        )
        .unwrap();
        assert!(!report.snapshot_loaded);
        assert!(report.tail.is_clean());
        assert_eq!(report.records_replayed, 4);
        assert_eq!(report.rows_applied, 4);
        // Same state as an uninterrupted run.
        let fresh = TenantRegistry::new();
        let t_fresh = fresh
            .register_streaming(id, &wf, AdmissionLimits::default())
            .unwrap();
        let rows: Vec<Tuple> = (0..4)
            .map(|i| wf.run(&[i & 1, (i >> 1) & 1, 1]).unwrap())
            .collect();
        t_fresh.ingest_rows(&rows).unwrap();
        let t_rec = rec.tenant(id).unwrap();
        assert_eq!(epochs_of(&t_rec), epochs_of(&t_fresh));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_then_tail_replay() {
        let dir = tmp_dir("snaptail");
        let wf = one_one_chain(1, 4);
        let id = TenantId(1);
        let mk = |bits: u32| {
            wf.run(&[bits & 1, (bits >> 1) & 1, (bits >> 2) & 1, (bits >> 3) & 1])
                .unwrap()
        };
        {
            let reg = DurableRegistry::create(&dir).unwrap();
            reg.register_streaming(id, &wf, AdmissionLimits::default())
                .unwrap();
            reg.ingest(id, &[mk(0), mk(1)]).unwrap();
            reg.snapshot().unwrap();
            reg.ingest(id, &[mk(2)]).unwrap();
        }
        let (rec, report) = DurableRegistry::recover(
            &dir,
            &[TenantDef {
                id,
                workflow: &wf,
                limits: AdmissionLimits::default(),
            }],
        )
        .unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(report.records_replayed, 1, "only the post-snapshot tail");
        assert_eq!(rec.ledger_len(id), Some(3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_bumps_epochs_and_shrinks_log() {
        let dir = tmp_dir("compact");
        let wf = one_one_chain(1, 4);
        let id = TenantId(3);
        let mk = |bits: u32| {
            wf.run(&[bits & 1, (bits >> 1) & 1, (bits >> 2) & 1, (bits >> 3) & 1])
                .unwrap()
        };
        let reg = DurableRegistry::create(&dir).unwrap();
        let tenant = reg
            .register_streaming(id, &wf, AdmissionLimits::default())
            .unwrap();
        reg.ingest(id, &[mk(0), mk(1), mk(2)]).unwrap();
        let before = epochs_of(&tenant);
        let log_before = reg.log_bytes();
        let gen = reg.compact(id).unwrap();
        assert_eq!(gen, 1);
        assert_eq!(reg.compaction_epoch(id), Some(1));
        let after = epochs_of(&tenant);
        assert_eq!(after.len(), before.len());
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(*a, *b + 1, "compaction bumps every module epoch");
        }
        assert!(
            reg.log_bytes() < log_before,
            "rebuild-on-compact drops the superseded prefix"
        );
        // Recovery after compaction reproduces the bumped epochs.
        drop(tenant);
        drop(reg);
        let (rec, report) = DurableRegistry::recover(
            &dir,
            &[TenantDef {
                id,
                workflow: &wf,
                limits: AdmissionLimits::default(),
            }],
        )
        .unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(rec.compaction_epoch(id), Some(1));
        assert_eq!(epochs_of(&rec.tenant(id).unwrap()), after);
        // And ingest keeps working on the recovered registry.
        rec.ingest(id, &[mk(3)]).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejected_rows_are_logged_but_replay_identically() {
        let dir = tmp_dir("reject");
        let wf = one_one_chain(1, 2);
        let id = TenantId(2);
        let good = wf.run(&[0, 1]).unwrap();
        let mut bad_values = good.values().to_vec();
        bad_values[2] ^= 1; // FD violation against `good`
        let bad = Tuple::new(bad_values);
        {
            let reg = DurableRegistry::create(&dir).unwrap();
            reg.register_streaming(id, &wf, AdmissionLimits::default())
                .unwrap();
            let err = reg.ingest(id, &[good.clone(), bad]).unwrap_err();
            match err {
                DurableIngestError::Rejected { applied, error } => {
                    assert_eq!(applied, 1);
                    assert_eq!(error.row_index(), Some(1), "frame-positioned");
                }
                other => panic!("expected Rejected, got {other}"),
            }
            assert_eq!(reg.ledger_len(id), Some(1));
        }
        let (rec, report) = DurableRegistry::recover(
            &dir,
            &[TenantDef {
                id,
                workflow: &wf,
                limits: AdmissionLimits::default(),
            }],
        )
        .unwrap();
        assert_eq!(report.records_replayed, 2, "the rejected row was logged");
        assert_eq!(report.rows_applied, 1);
        assert_eq!(report.rows_rejected, 1, "and rejected again on replay");
        assert_eq!(rec.ledger_len(id), Some(1));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
