//! The durable registry: a [`TenantRegistry`] whose ingest path
//! **writes ahead** to a checksummed log through a group-commit lane,
//! with snapshotting, log retention (tombstones + rebuild-on-compact),
//! and crash recovery.
//!
//! ## Write path
//!
//! Every ingest frame goes through
//! [`Tenant::ingest_batch_with`](sv_serve::Tenant::ingest_batch_with):
//! the whole frame is **validated first**, then logged as one frame
//! record, then applied and published — all-or-nothing. A frame in the
//! log is by construction a frame that applies cleanly, so replay
//! reconstructs the same state without re-running rejections.
//!
//! Durability is decoupled from application: [`DurableRegistry::submit`]
//! appends and applies without waiting for the disk, and
//! [`DurableRegistry::wait_durable`] blocks until the frame's sequence
//! is covered by an fsync. The [`CommitLane`] coalesces concurrent
//! waiters into one flush (leader/follower group commit), so `N`
//! tenants ingesting in parallel cost far fewer than `N` fsyncs.
//! [`DurableRegistry::ingest`] is the submit-then-wait convenience.
//!
//! ## Recovery contract
//!
//! [`DurableRegistry::recover`] = snapshot load (if present) + log-tail
//! replay (records with `seq >` the snapshot's `last_seq`). The
//! recovered registry is **bit-for-bit equivalent** to the
//! uninterrupted run: same module rows in the same arrival order, same
//! group structure, same relation epochs — the crash-fault suite
//! (`tests/crash_prop.rs`) proves this at every log truncation point,
//! including cuts through the middle of coalesced batches.
//!
//! ## Retention
//!
//! [`DurableRegistry::compact`] rebuilds a tenant's modules from its
//! ledger with every relation epoch bumped by one (strictly greater
//! than any epoch a client has seen, so epoch-conditioned probes get
//! `StaleEpoch` instead of stale answers) and a **fresh memo** per
//! module, writes a snapshot, marks the superseded log prefix with a
//! tombstone, and rewrites the log without it. Control-plane
//! operations (snapshot, compact) take the registry's control lock in
//! write mode, quiescing in-flight ingest so snapshot anchors are
//! consistent with the ledgers.

use crate::error::{DurableError, LogTail};
use crate::lane::{CommitLane, LaneStats};
use crate::log::{LogWriter, Record};
use crate::snapshot::{Snapshot, TenantSnapshot};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;
use sv_core::safety::{IngestBatch, SafetyOracle as _};
use sv_core::CoreError;
use sv_relation::Tuple;
use sv_serve::{
    AdmissionLimits, BatchIngestError, BatchOutcome, IngestSink, IngestSinkError, IngestSubmission,
    Tenant, TenantConfig, TenantId, TenantRegistry,
};
use sv_workflow::{ModuleId, Workflow};

/// File name of the write-ahead log inside the durable directory.
pub const LOG_FILE: &str = "wal.log";
/// File name of the snapshot inside the durable directory.
pub const SNAPSHOT_FILE: &str = "snapshot.svs";

/// One tenant's definition for [`DurableRegistry::recover`]: durable
/// state stores rows and epochs, not workflow structure, so the caller
/// re-supplies the workflows (they are code, not data).
pub struct TenantDef<'a> {
    /// The tenant's wire id.
    pub id: TenantId,
    /// The tenant's workflow.
    pub workflow: &'a Workflow,
    /// Admission bounds for the recovered tenant.
    pub limits: AdmissionLimits,
}

/// What [`DurableRegistry::recover`] found and did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a snapshot was loaded.
    pub snapshot_loaded: bool,
    /// The log's tail disposition before truncation.
    pub tail: LogTail,
    /// Log records replayed (those past the snapshot).
    pub records_replayed: u64,
    /// Replayed rows that applied.
    pub rows_applied: u64,
    /// Replayed rows rejected on replay. Frame records are validated
    /// *before* logging, so this stays 0 for them; only legacy per-row
    /// records (written before frame-atomic ingest) can re-reject.
    pub rows_rejected: u64,
    /// Highest sequence number in the recovered log.
    pub last_seq: u64,
}

/// An ingest through the durable registry failed. Frames are
/// all-or-nothing: on either variant, **nothing** of the frame was
/// applied or logged — except [`Durable`](Self::Durable) raised by
/// [`DurableRegistry::wait_durable`], where the frame is applied in
/// memory but its durability is unconfirmed.
#[derive(Debug)]
pub enum DurableIngestError {
    /// A row failed validation (frame-positioned via
    /// [`CoreError::row_index`]). The frame never reached the log.
    Rejected {
        /// The offending row's error.
        error: CoreError,
    },
    /// The durability layer refused: log append failure, fsync
    /// failure, or unknown tenant.
    Durable {
        /// The underlying fault.
        error: DurableError,
    },
}

impl fmt::Display for DurableIngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Rejected { error } => write!(f, "ingest frame rejected: {error}"),
            Self::Durable { error } => write!(f, "durable ingest failed: {error}"),
        }
    }
}

impl std::error::Error for DurableIngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Rejected { error } => Some(error),
            Self::Durable { error } => Some(error),
        }
    }
}

struct TenantDurable {
    /// Applied workflow rows, arrival order — the durable ground truth
    /// from which module relations are pure derivations.
    ledger: Vec<Tuple>,
    /// Retention generation (compactions undergone).
    compaction_epoch: u64,
}

/// A [`TenantRegistry`] with durability: write-ahead logging on
/// ingest through a group-commit [`CommitLane`], snapshots, retention,
/// recovery.
///
/// All mutation must go through this wrapper (or a [`Server`]
/// configured with this registry as its ingest sink — it implements
/// [`IngestSink`], so pass the `Arc<DurableRegistry>` to
/// [`Server::with_ingest_sink`]); mutating the inner registry's
/// tenants directly would bypass the log.
///
/// [`Server`]: sv_serve::Server
/// [`Server::with_ingest_sink`]: sv_serve::Server::with_ingest_sink
pub struct DurableRegistry {
    inner: Arc<TenantRegistry>,
    dir: PathBuf,
    lane: CommitLane,
    tenants: Mutex<BTreeMap<u64, TenantDurable>>,
    /// Data plane takes this in read mode for the span of a submit;
    /// the control plane (snapshot, compact) takes write mode so its
    /// log anchors observe no frame halfway between log and ledger.
    control: RwLock<()>,
}

impl DurableRegistry {
    /// Creates a fresh durable directory: an empty log, no snapshot
    /// (a stale snapshot from an earlier life is removed).
    ///
    /// # Errors
    /// IO failures.
    pub fn create(dir: &Path) -> Result<Self, DurableError> {
        std::fs::create_dir_all(dir).map_err(|e| DurableError::io("create dir", dir, &e))?;
        let log = LogWriter::create(&dir.join(LOG_FILE))?;
        let snap = dir.join(SNAPSHOT_FILE);
        if snap.exists() {
            std::fs::remove_file(&snap).map_err(|e| DurableError::io("remove", &snap, &e))?;
        }
        Ok(Self {
            inner: Arc::new(TenantRegistry::new()),
            dir: dir.to_path_buf(),
            lane: CommitLane::new(log),
            tenants: Mutex::new(BTreeMap::new()),
            control: RwLock::new(()),
        })
    }

    /// Rebuilds a registry from a durable directory: loads the snapshot
    /// (if any), restores every snapshotted tenant's modules and epochs
    /// from its ledger, then replays the log tail (`seq > last_seq`) —
    /// frame records apply whole (they were validated before logging),
    /// legacy per-row records re-run validation. The log's torn or
    /// corrupt tail, if any, is truncated away so the recovered log is
    /// clean.
    ///
    /// # Errors
    /// IO failures; [`DurableError::SnapshotCorrupt`] for a damaged
    /// snapshot; [`DurableError::DefMismatch`] when durable state names
    /// tenants or modules the definitions don't provide.
    pub fn recover(
        dir: &Path,
        defs: &[TenantDef<'_>],
    ) -> Result<(Self, RecoveryReport), DurableError> {
        std::fs::create_dir_all(dir).map_err(|e| DurableError::io("create dir", dir, &e))?;
        let snapshot = Snapshot::load(&dir.join(SNAPSHOT_FILE))?;
        let (log, records, tail) = LogWriter::open(&dir.join(LOG_FILE))?;
        let inner = Arc::new(TenantRegistry::new());
        let mut tenants = BTreeMap::new();
        for def in defs {
            inner.create(
                def.id,
                TenantConfig::new(def.workflow)
                    .streaming(true)
                    .limits(def.limits),
            )?;
            tenants.insert(
                def.id.0,
                TenantDurable {
                    ledger: Vec::new(),
                    compaction_epoch: 0,
                },
            );
        }
        let this = Self {
            inner,
            dir: dir.to_path_buf(),
            lane: CommitLane::new(log),
            tenants: Mutex::new(tenants),
            control: RwLock::new(()),
        };
        let mut report = RecoveryReport {
            snapshot_loaded: snapshot.is_some(),
            tail,
            records_replayed: 0,
            rows_applied: 0,
            rows_rejected: 0,
            last_seq: 0,
        };
        let snap_last_seq = snapshot.as_ref().map_or(0, |s| s.last_seq);
        {
            let mut tmap = this.tenants.lock().expect("durable tenants poisoned");
            if let Some(snap) = snapshot {
                for ts in snap.tenants {
                    let Some(td) = tmap.get_mut(&ts.tenant) else {
                        return Err(DurableError::DefMismatch {
                            detail: format!(
                                "snapshot names tenant {} with no definition",
                                ts.tenant
                            ),
                        });
                    };
                    let tenant = this
                        .inner
                        .get(TenantId(ts.tenant))
                        .expect("registered above");
                    let live: Vec<ModuleId> = {
                        let guard = tenant.oracles();
                        guard.iter().map(|(m, _)| m).collect()
                    };
                    if live.len() != ts.module_epochs.len() {
                        return Err(DurableError::DefMismatch {
                            detail: format!(
                                "tenant {}: snapshot has {} modules, workflow has {}",
                                ts.tenant,
                                ts.module_epochs.len(),
                                live.len()
                            ),
                        });
                    }
                    let mut id_epochs = Vec::with_capacity(live.len());
                    for (mid, &(idx, epoch)) in live.iter().zip(&ts.module_epochs) {
                        if mid.index() as u32 != idx {
                            return Err(DurableError::DefMismatch {
                                detail: format!(
                                    "tenant {}: snapshot module index {idx} where workflow has {}",
                                    ts.tenant,
                                    mid.index()
                                ),
                            });
                        }
                        id_epochs.push((*mid, epoch));
                    }
                    let ledger: Vec<Tuple> = ts.ledger.into_iter().map(Tuple::new).collect();
                    tenant.with_oracles_mut(|o| o.restore_ledger(&ledger, &id_epochs))?;
                    td.ledger = ledger;
                    td.compaction_epoch = ts.compaction_epoch;
                }
            }
            for r in &records {
                if r.seq() <= snap_last_seq {
                    continue;
                }
                report.records_replayed += 1;
                match r {
                    Record::IngestFrame { tenant, rows, .. } => {
                        let Some(td) = tmap.get_mut(tenant) else {
                            return Err(DurableError::DefMismatch {
                                detail: format!("log names tenant {tenant} with no definition"),
                            });
                        };
                        let t = this.inner.get(TenantId(*tenant)).expect("registered above");
                        let batch =
                            IngestBatch::new(rows.iter().cloned().map(Tuple::new).collect());
                        // Frames were validated before logging, so this
                        // applies unless the definitions mismatch the
                        // log — surface that instead of dropping rows.
                        match t.ingest_batch(&batch) {
                            Ok(_) => {
                                td.ledger.extend_from_slice(batch.rows());
                                report.rows_applied += rows.len() as u64;
                            }
                            Err(failure) => {
                                return Err(DurableError::DefMismatch {
                                    detail: format!(
                                        "logged frame for tenant {tenant} no longer applies: {}",
                                        failure.error
                                    ),
                                })
                            }
                        }
                    }
                    Record::IngestRow { tenant, row, .. } => {
                        let Some(td) = tmap.get_mut(tenant) else {
                            return Err(DurableError::DefMismatch {
                                detail: format!("log names tenant {tenant} with no definition"),
                            });
                        };
                        let t = this.inner.get(TenantId(*tenant)).expect("registered above");
                        let tuple = Tuple::new(row.clone());
                        // Legacy logs wrote rows before validating, so
                        // replay re-runs the same per-row validation.
                        match t.ingest_rows(std::slice::from_ref(&tuple)) {
                            Ok(_) => {
                                td.ledger.push(tuple);
                                report.rows_applied += 1;
                            }
                            Err(_) => report.rows_rejected += 1,
                        }
                    }
                    Record::Tombstone { tenant, upto, .. } => {
                        // A tombstone promises its prefix is captured by a
                        // snapshot; without one, state would silently lose
                        // rows — refuse instead.
                        if *upto > snap_last_seq {
                            return Err(DurableError::DefMismatch {
                                detail: format!(
                                    "tombstone for tenant {tenant} supersedes seq <= {upto} \
                                 but the snapshot covers only seq <= {snap_last_seq}"
                                ),
                            });
                        }
                    }
                    Record::Compact {
                        tenant,
                        compaction_epoch,
                        ..
                    } => {
                        let Some(td) = tmap.get_mut(tenant) else {
                            return Err(DurableError::DefMismatch {
                                detail: format!("log names tenant {tenant} with no definition"),
                            });
                        };
                        td.compaction_epoch = (*compaction_epoch).max(td.compaction_epoch);
                    }
                }
            }
            report.last_seq = this.lane.with_log(|log| log.last_seq());
        }
        Ok((this, report))
    }

    /// The durable directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The inner serving registry (share with a
    /// [`Server`](sv_serve::Server); pass this `Arc<DurableRegistry>`
    /// as the server's [`IngestSink`] so served ingest writes through
    /// the log).
    #[must_use]
    pub fn registry(&self) -> &Arc<TenantRegistry> {
        &self.inner
    }

    /// Looks up a tenant.
    #[must_use]
    pub fn tenant(&self, id: TenantId) -> Option<Arc<Tenant>> {
        self.inner.get(id)
    }

    /// Registers a tenant from its configuration. Durable tenants are
    /// forced to streaming mode: their state is the log, so they start
    /// empty and grow through [`ingest`](Self::ingest).
    ///
    /// # Errors
    /// Duplicate ids and structural workflow errors
    /// ([`DurableError::Serve`]).
    pub fn register(
        &self,
        id: TenantId,
        config: TenantConfig<'_>,
    ) -> Result<Arc<Tenant>, DurableError> {
        let tenant = self.inner.create(id, config.streaming(true))?;
        self.tenants
            .lock()
            .expect("durable tenants poisoned")
            .insert(
                id.0,
                TenantDurable {
                    ledger: Vec::new(),
                    compaction_epoch: 0,
                },
            );
        Ok(tenant)
    }

    /// Sets the commit lane's group-commit window: how long a sync
    /// leader holds the door open for more frames before flushing.
    /// Zero (the default) flushes eagerly; coalescing then comes only
    /// from syncs already in flight.
    pub fn set_commit_window(&self, window: Duration) {
        self.lane.set_window(window);
    }

    /// The commit lane's counters (frames, fsyncs, coalesced).
    #[must_use]
    pub fn lane_stats(&self) -> LaneStats {
        self.lane.stats()
    }

    /// Submits one ingest frame: validate → log (no fsync) → apply →
    /// publish, all-or-nothing, returning the applied outcome whose
    /// `log_seq` names the frame's position in the durability order.
    /// The frame is **applied but not yet durable** — pass the
    /// sequence to [`wait_durable`](Self::wait_durable) to block until
    /// a sync covers it, or use [`ingest`](Self::ingest) for both.
    ///
    /// Concurrent submits from different tenants proceed in parallel
    /// (per-tenant ingest lanes, one shared log behind a short mutex).
    ///
    /// # Errors
    /// [`DurableIngestError::Rejected`] when validation fails (nothing
    /// logged, nothing applied); [`DurableIngestError::Durable`] when
    /// the log append fails (nothing applied).
    pub fn submit(
        &self,
        id: TenantId,
        batch: &IngestBatch,
    ) -> Result<BatchOutcome, DurableIngestError> {
        let _data = self.control.read().expect("durable control poisoned");
        let unknown = || DurableIngestError::Durable {
            error: DurableError::UnknownTenant { tenant: id.0 },
        };
        let tenant = self.inner.get(id).ok_or_else(unknown)?;
        if !self
            .tenants
            .lock()
            .expect("durable tenants poisoned")
            .contains_key(&id.0)
        {
            return Err(unknown());
        }
        tenant
            .ingest_batch_with(
                batch,
                |b| {
                    let rows: Vec<Vec<_>> = b.rows().iter().map(|t| t.values().to_vec()).collect();
                    self.lane.append_frame(id.0, &rows)
                },
                |b, _added| {
                    // Under the tenant's ingest lane, so ledger order ==
                    // this tenant's log order.
                    self.tenants
                        .lock()
                        .expect("durable tenants poisoned")
                        .get_mut(&id.0)
                        .expect("checked above")
                        .ledger
                        .extend_from_slice(b.rows());
                },
            )
            .map_err(|e| match e {
                BatchIngestError::Rejected(f) => DurableIngestError::Rejected { error: f.error },
                BatchIngestError::Wal(error) => DurableIngestError::Durable { error },
            })
    }

    /// Blocks until log sequence `seq` is covered by a successful
    /// fsync (group commit: one flush may cover many frames),
    /// returning the covering durable sequence.
    ///
    /// # Errors
    /// IO failures from a sync this caller led; the frame stays
    /// applied in memory but its durability is unconfirmed.
    pub fn wait_durable(&self, seq: u64) -> Result<u64, DurableError> {
        self.lane.wait_durable(seq)
    }

    /// Ingests one frame with full durability:
    /// [`submit`](Self::submit) + [`wait_durable`](Self::wait_durable).
    /// Returns the number of new module rows.
    ///
    /// # Errors
    /// As [`submit`](Self::submit), plus
    /// [`DurableIngestError::Durable`] when the covering sync fails.
    pub fn ingest(&self, id: TenantId, rows: &[Tuple]) -> Result<u64, DurableIngestError> {
        let batch = IngestBatch::new(rows.to_vec());
        let outcome = self.submit(id, &batch)?;
        self.wait_durable(outcome.log_seq)
            .map_err(|error| DurableIngestError::Durable { error })?;
        Ok(outcome.added)
    }

    fn build_snapshot(
        &self,
        tenants: &BTreeMap<u64, TenantDurable>,
        last_seq: u64,
    ) -> Result<Snapshot, DurableError> {
        let mut out = Vec::with_capacity(tenants.len());
        for (&tid, td) in tenants {
            let tenant = self
                .inner
                .get(TenantId(tid))
                .ok_or(DurableError::UnknownTenant { tenant: tid })?;
            let module_epochs: Vec<(u32, u64)> = {
                let guard = tenant.oracles();
                guard
                    .iter()
                    .map(|(mid, o)| (mid.index() as u32, o.relation_epoch()))
                    .collect()
            };
            out.push(TenantSnapshot {
                tenant: tid,
                compaction_epoch: td.compaction_epoch,
                module_epochs,
                ledger: td.ledger.iter().map(|t| t.values().to_vec()).collect(),
            });
        }
        Ok(Snapshot {
            last_seq,
            tenants: out,
        })
    }

    /// Writes a snapshot of every tenant (atomic temp-file + rename),
    /// anchored at the log's current last sequence number. In-flight
    /// ingest is quiesced (control lock, write mode) so the anchor is
    /// consistent; the log is left as-is and recovery replays only
    /// records past the anchor.
    ///
    /// Returns the snapshot's encoded size in bytes.
    ///
    /// # Errors
    /// IO failures.
    pub fn snapshot(&self) -> Result<u64, DurableError> {
        let _ctl = self.control.write().expect("durable control poisoned");
        let tenants = self.tenants.lock().expect("durable tenants poisoned");
        let last_seq = self.lane.with_log(|log| log.last_seq());
        let snap = self.build_snapshot(&tenants, last_seq)?;
        snap.save(&self.dir.join(SNAPSHOT_FILE))?;
        Ok(snap.encode().len() as u64)
    }

    /// Compacts one tenant: rebuilds every module from the ledger with
    /// its relation epoch bumped by one and a **fresh memo** (any probe
    /// conditioned on a pre-compaction epoch now gets `StaleEpoch`, and
    /// no stale cached level can survive), advances the tenant's
    /// compaction epoch, snapshots, tombstones the superseded log
    /// prefix, and rewrites the log without it. Runs under the control
    /// lock in write mode — no ingest is in flight while the log is
    /// rewritten.
    ///
    /// Returns the tenant's new compaction epoch.
    ///
    /// # Errors
    /// [`DurableError::UnknownTenant`]; IO failures; reconstruction
    /// failures ([`DurableError::Core`]).
    pub fn compact(&self, id: TenantId) -> Result<u64, DurableError> {
        let _ctl = self.control.write().expect("durable control poisoned");
        let tenant = self
            .inner
            .get(id)
            .ok_or(DurableError::UnknownTenant { tenant: id.0 })?;
        let mut tenants = self.tenants.lock().expect("durable tenants poisoned");
        let td = tenants
            .get_mut(&id.0)
            .ok_or(DurableError::UnknownTenant { tenant: id.0 })?;
        // 1. Rebuild in memory: same rows, epoch + 1, cold memo.
        let id_epochs: Vec<(ModuleId, u64)> = {
            let guard = tenant.oracles();
            guard
                .iter()
                .map(|(mid, o)| (mid, o.relation_epoch() + 1))
                .collect()
        };
        tenant.with_oracles_mut(|o| o.restore_ledger(&td.ledger, &id_epochs))?;
        td.compaction_epoch += 1;
        let new_epoch = td.compaction_epoch;
        // 2. Snapshot the rebuilt state (anchor = everything logged).
        let upto = self.lane.with_log(|log| log.last_seq());
        let snap = self.build_snapshot(&tenants, upto)?;
        snap.save(&self.dir.join(SNAPSHOT_FILE))?;
        // 3. Mark retention in the log (audit trail; replay-idempotent
        //    against the snapshot written above).
        self.lane.with_log(|log| {
            log.append_tombstone(id.0, upto)?;
            log.append_compact(id.0, new_epoch)?;
            log.sync()
        })?;
        // 4. Rebuild the log without the superseded prefix.
        let (records, _tail, _len) = crate::log::read_log(&self.dir.join(LOG_FILE))?;
        let kept: Vec<Record> = records
            .into_iter()
            .filter(|r| !(r.tenant() == id.0 && r.seq() <= upto))
            .collect();
        self.lane.with_log(|log| log.rewrite(&kept))?;
        Ok(new_epoch)
    }

    /// The tenant's retention generation (compactions undergone).
    #[must_use]
    pub fn compaction_epoch(&self, id: TenantId) -> Option<u64> {
        self.tenants
            .lock()
            .expect("durable tenants poisoned")
            .get(&id.0)
            .map(|td| td.compaction_epoch)
    }

    /// Number of applied rows in the tenant's durable ledger.
    #[must_use]
    pub fn ledger_len(&self, id: TenantId) -> Option<usize> {
        self.tenants
            .lock()
            .expect("durable tenants poisoned")
            .get(&id.0)
            .map(|td| td.ledger.len())
    }

    /// Byte length of the log's valid prefix.
    #[must_use]
    pub fn log_bytes(&self) -> u64 {
        self.lane.with_log(|log| log.len_bytes())
    }

    /// Highest log sequence number assigned so far.
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.lane.with_log(|log| log.last_seq())
    }
}

impl IngestSink for DurableRegistry {
    fn submit(
        &self,
        tenant: &Arc<Tenant>,
        batch: IngestBatch,
    ) -> Result<IngestSubmission, IngestSinkError> {
        let outcome =
            DurableRegistry::submit(self, tenant.id(), &batch).map_err(|e| IngestSinkError {
                applied: 0,
                detail: e.to_string(),
            })?;
        Ok(IngestSubmission {
            added: outcome.added,
            epochs: outcome.epochs,
            seq: outcome.log_seq,
        })
    }

    fn wait_durable(&self, submission: &IngestSubmission) -> Result<u64, IngestSinkError> {
        DurableRegistry::wait_durable(self, submission.seq).map_err(|e| IngestSinkError {
            applied: submission.added,
            detail: format!("group commit: {e}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_workflow::library::one_one_chain;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sv-durable-reg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn epochs_of(t: &Arc<Tenant>) -> Vec<u64> {
        t.epochs().iter().map(|me| me.epoch).collect()
    }

    #[test]
    fn ingest_recover_roundtrip_without_snapshot() {
        let dir = tmp_dir("roundtrip");
        let wf = one_one_chain(2, 3);
        let id = TenantId(5);
        {
            let reg = DurableRegistry::create(&dir).unwrap();
            reg.register(id, TenantConfig::new(&wf)).unwrap();
            let rows: Vec<Tuple> = (0..4)
                .map(|i| wf.run(&[i & 1, (i >> 1) & 1, 1]).unwrap())
                .collect();
            reg.ingest(id, &rows).unwrap();
        }
        let (rec, report) = DurableRegistry::recover(
            &dir,
            &[TenantDef {
                id,
                workflow: &wf,
                limits: AdmissionLimits::default(),
            }],
        )
        .unwrap();
        assert!(!report.snapshot_loaded);
        assert!(report.tail.is_clean());
        assert_eq!(report.records_replayed, 1, "one frame record per ingest");
        assert_eq!(report.rows_applied, 4);
        // Same state as an uninterrupted run.
        let fresh = TenantRegistry::new();
        let t_fresh = fresh
            .create(id, TenantConfig::new(&wf).streaming(true))
            .unwrap();
        let rows: Vec<Tuple> = (0..4)
            .map(|i| wf.run(&[i & 1, (i >> 1) & 1, 1]).unwrap())
            .collect();
        t_fresh.ingest_rows(&rows).unwrap();
        let t_rec = rec.tenant(id).unwrap();
        assert_eq!(epochs_of(&t_rec), epochs_of(&t_fresh));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_then_tail_replay() {
        let dir = tmp_dir("snaptail");
        let wf = one_one_chain(1, 4);
        let id = TenantId(1);
        let mk = |bits: u32| {
            wf.run(&[bits & 1, (bits >> 1) & 1, (bits >> 2) & 1, (bits >> 3) & 1])
                .unwrap()
        };
        {
            let reg = DurableRegistry::create(&dir).unwrap();
            reg.register(id, TenantConfig::new(&wf)).unwrap();
            reg.ingest(id, &[mk(0), mk(1)]).unwrap();
            reg.snapshot().unwrap();
            reg.ingest(id, &[mk(2)]).unwrap();
        }
        let (rec, report) = DurableRegistry::recover(
            &dir,
            &[TenantDef {
                id,
                workflow: &wf,
                limits: AdmissionLimits::default(),
            }],
        )
        .unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(report.records_replayed, 1, "only the post-snapshot tail");
        assert_eq!(rec.ledger_len(id), Some(3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_bumps_epochs_and_shrinks_log() {
        let dir = tmp_dir("compact");
        let wf = one_one_chain(1, 4);
        let id = TenantId(3);
        let mk = |bits: u32| {
            wf.run(&[bits & 1, (bits >> 1) & 1, (bits >> 2) & 1, (bits >> 3) & 1])
                .unwrap()
        };
        let reg = DurableRegistry::create(&dir).unwrap();
        let tenant = reg.register(id, TenantConfig::new(&wf)).unwrap();
        reg.ingest(id, &[mk(0), mk(1), mk(2)]).unwrap();
        let before = epochs_of(&tenant);
        let log_before = reg.log_bytes();
        let gen = reg.compact(id).unwrap();
        assert_eq!(gen, 1);
        assert_eq!(reg.compaction_epoch(id), Some(1));
        let after = epochs_of(&tenant);
        assert_eq!(after.len(), before.len());
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(*a, *b + 1, "compaction bumps every module epoch");
        }
        assert!(
            reg.log_bytes() < log_before,
            "rebuild-on-compact drops the superseded prefix"
        );
        // Recovery after compaction reproduces the bumped epochs.
        drop(tenant);
        drop(reg);
        let (rec, report) = DurableRegistry::recover(
            &dir,
            &[TenantDef {
                id,
                workflow: &wf,
                limits: AdmissionLimits::default(),
            }],
        )
        .unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(rec.compaction_epoch(id), Some(1));
        assert_eq!(epochs_of(&rec.tenant(id).unwrap()), after);
        // And ingest keeps working on the recovered registry.
        rec.ingest(id, &[mk(3)]).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejected_frames_never_reach_the_log() {
        let dir = tmp_dir("reject");
        let wf = one_one_chain(1, 2);
        let id = TenantId(2);
        let good = wf.run(&[0, 1]).unwrap();
        let mut bad_values = good.values().to_vec();
        bad_values[2] ^= 1; // FD violation against `good`
        let bad = Tuple::new(bad_values);
        {
            let reg = DurableRegistry::create(&dir).unwrap();
            reg.register(id, TenantConfig::new(&wf)).unwrap();
            let err = reg.ingest(id, &[good.clone(), bad]).unwrap_err();
            match err {
                DurableIngestError::Rejected { error } => {
                    assert_eq!(error.row_index(), Some(1), "frame-positioned");
                }
                other => panic!("expected Rejected, got {other}"),
            }
            assert_eq!(reg.ledger_len(id), Some(0), "all-or-nothing");
            assert_eq!(reg.last_seq(), 0, "rejected frame was never logged");
            // The valid row alone still lands — and is logged.
            reg.ingest(id, &[good]).unwrap();
            assert_eq!(reg.ledger_len(id), Some(1));
            assert_eq!(reg.last_seq(), 1);
        }
        let (rec, report) = DurableRegistry::recover(
            &dir,
            &[TenantDef {
                id,
                workflow: &wf,
                limits: AdmissionLimits::default(),
            }],
        )
        .unwrap();
        assert_eq!(report.records_replayed, 1);
        assert_eq!(report.rows_applied, 1);
        assert_eq!(report.rows_rejected, 0, "frame logs never re-reject");
        assert_eq!(rec.ledger_len(id), Some(1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn submit_then_wait_groups_fsyncs() {
        let dir = tmp_dir("group");
        let wf = one_one_chain(1, 3);
        let id = TenantId(9);
        let reg = DurableRegistry::create(&dir).unwrap();
        reg.register(id, TenantConfig::new(&wf)).unwrap();
        let mut last = 0;
        for i in 0..10u32 {
            let row = wf.run(&[i & 1, (i >> 1) & 1, (i >> 2) & 1]).unwrap();
            let outcome = reg.submit(id, &IngestBatch::new(vec![row])).unwrap();
            last = outcome.log_seq;
        }
        reg.wait_durable(last).unwrap();
        let stats = reg.lane_stats();
        assert_eq!(stats.frames, 10);
        assert_eq!(stats.fsyncs, 1, "pipelined submits share one flush");
        assert_eq!(stats.coalesced, 9);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
